"""Differential sweep: the Cubetree engine vs. on-the-fly recomputation.

Property: for ANY star schema, fact data, materialized lattice subset, and
slice query, routing the query through the Cubetree forest returns exactly
the rows that recomputing the aggregate from the raw fact table returns.
The :class:`~repro.core.onthefly.OnTheFlyEngine` is the oracle — it holds
no materialized views, so agreement means the whole pipeline (view
computation, valid mapping, packing, routing, reaggregation, finalization)
preserved the data.

Example count scales with ``REPRO_DIFF_EXAMPLES`` (default 200 for local
runs; CI sets a smaller smoke profile).
"""

import os
from itertools import combinations

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.engine import CubetreeEngine
from repro.core.onthefly import OnTheFlyEngine
from repro.cube.computation import CubeComputation
from repro.cube.parallel import ParallelCubeComputation
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.warehouse.star import Dimension, StarSchema

EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "200"))

#: Candidate fact-key names (2-3 are drawn per schema).
KEY_NAMES = ("ka", "kb", "kc")


def _make_schema(domain_sizes):
    dimensions = {}
    for name, size in domain_sizes.items():
        dimensions[name] = Dimension(
            name=f"dim_{name}",
            key=name,
            attributes=(name,),
            rows=[(value,) for value in range(1, size + 1)],
        )
    return StarSchema(
        fact_keys=tuple(domain_sizes),
        measure="quantity",
        dimensions=dimensions,
    )


@st.composite
def warehouses(draw):
    """A random star schema plus fact rows (integer-valued measures)."""
    n_keys = draw(st.integers(min_value=2, max_value=3))
    keys = KEY_NAMES[:n_keys]
    domain_sizes = {
        key: draw(st.integers(min_value=2, max_value=6)) for key in keys
    }
    rows = draw(
        st.lists(
            st.tuples(
                *[
                    st.integers(min_value=1, max_value=domain_sizes[key])
                    for key in keys
                ],
                st.integers(min_value=0, max_value=20),
            ),
            min_size=1,
            max_size=50,
        )
    )
    # Integer-valued float quantities: float sums stay exact, so the two
    # engines' answers can be compared with ==.
    facts = [tuple(row[:-1]) + (float(row[-1]),) for row in rows]
    return domain_sizes, facts


@st.composite
def view_subsets(draw, keys):
    """The apex + V_none + a random subset of the proper lattice nodes."""
    nodes = [("apex", tuple(keys)), ("none", ())]
    middles = [
        node
        for size in range(1, len(keys))
        for node in combinations(keys, size)
    ]
    chosen = draw(
        st.lists(st.sampled_from(middles), unique=True, max_size=len(middles))
        if middles
        else st.just([])
    )
    nodes.extend((f"v_{'_'.join(node)}", node) for node in chosen)
    return [ViewDefinition(name, group_by) for name, group_by in nodes]


@st.composite
def slice_queries(draw, domain_sizes):
    """A random slice query over the schema's fact keys."""
    keys = list(domain_sizes)
    node = draw(
        st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
    )
    bound = draw(
        st.lists(st.sampled_from(node), unique=True, max_size=len(node))
        if node
        else st.just([])
    )
    bindings = []
    ranges = []
    for attr in bound:
        size = domain_sizes[attr]
        if draw(st.booleans()):
            bindings.append(
                (attr, draw(st.integers(min_value=1, max_value=size)))
            )
        else:
            low = draw(st.integers(min_value=1, max_value=size))
            high = draw(st.integers(min_value=low, max_value=size))
            ranges.append((attr, low, high))
    group_by = tuple(a for a in node if a not in set(bound))
    return SliceQuery(group_by, tuple(bindings), tuple(ranges))


@st.composite
def differential_cases(draw):
    domain_sizes, facts = draw(warehouses())
    views = draw(view_subsets(tuple(domain_sizes)))
    queries = draw(
        st.lists(slice_queries(domain_sizes), min_size=1, max_size=4)
    )
    return domain_sizes, facts, views, queries


@given(differential_cases())
@settings(max_examples=EXAMPLES, deadline=None)
def test_cubetree_answers_match_onthefly_recomputation(case):
    domain_sizes, facts, views, queries = case
    schema = _make_schema(domain_sizes)

    cubetree = CubetreeEngine(schema, buffer_pages=64)
    cubetree.materialize(views, facts)

    oracle = OnTheFlyEngine(schema, buffer_pages=64)
    oracle.load_fact(facts)

    for query in queries:
        expected = oracle.query(query).rows
        got = cubetree.query(query).rows
        assert got == expected, query.describe()


@given(differential_cases())
@settings(max_examples=max(10, EXAMPLES // 4), deadline=None)
def test_parallel_computation_matches_serial(case):
    """The process-parallel cube pipeline is bit-identical to serial.

    ``min_parallel_rows=1`` forces the pool path (bucket partitioning,
    worker round-trips, k-way merge) even for tiny inputs, so this
    sweeps the parallel machinery itself, not just its serial fallback.
    Equality is exact (`==` on float states): partitions are keyed on
    the first group coordinate, so every worker folds complete groups
    over the same rows in the same order as the serial pipeline.
    """
    domain_sizes, facts, views, _queries = case
    schema = _make_schema(domain_sizes)
    serial = CubeComputation(schema)
    parallel = ParallelCubeComputation(
        schema, workers=2, min_parallel_rows=1
    )
    expected = serial.execute(facts, views)
    got = parallel.execute(facts, views)
    assert list(got) == list(expected)  # same plan-step ordering
    assert got == expected


@given(differential_cases())
@settings(max_examples=max(10, EXAMPLES // 10), deadline=None)
def test_differential_survives_incremental_refresh(case):
    """After a merge-pack refresh both engines still agree."""
    domain_sizes, facts, views, queries = case
    if len(facts) < 2:
        return
    split = len(facts) // 2
    initial, delta = facts[:split], facts[split:]

    schema = _make_schema(domain_sizes)
    cubetree = CubetreeEngine(schema, buffer_pages=64)
    cubetree.materialize(views, initial)
    cubetree.update(delta)

    oracle = OnTheFlyEngine(schema, buffer_pages=64)
    oracle.load_fact(facts)

    for query in queries:
        assert cubetree.query(query).rows == oracle.query(query).rows
