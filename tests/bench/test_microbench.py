"""Microbenchmarks for the batched hot paths (pytest-benchmark).

These pin the three layers the perf work optimized — record codecs, leaf
(de)serialization, and streaming aggregation — at the function level, so
a regression shows up here before it shows up in the end-to-end suites
(``repro bench``).  Each benchmark asserts the result is correct, so a
"fast but wrong" implementation cannot pass.

Run with ``pytest tests/bench --benchmark-enable``; without the flag the
functions still run once as plain correctness tests (pytest-benchmark's
default), keeping tier-1 wall time unaffected.
"""

import random

import pytest

pytest.importorskip("pytest_benchmark")

from repro.relational.executor import AggFunc, sort_group_aggregate
from repro.rtree.node import RLeafNode, leaf_capacity
from repro.storage.codec import (
    RecordCodec,
    entry_codec,
    float_column,
    int_column,
)

N_ROWS = 2_000


@pytest.fixture(scope="module")
def fact_codec():
    return RecordCodec([int_column(), int_column(), float_column()])


@pytest.fixture(scope="module")
def fact_rows():
    rng = random.Random(7)
    return [
        (rng.randrange(1, 500), rng.randrange(1, 50), float(rng.randrange(100)))
        for _ in range(N_ROWS)
    ]


def test_encode_many(benchmark, fact_codec, fact_rows):
    raw = benchmark(fact_codec.encode_many, fact_rows)
    assert len(raw) == fact_codec.record_size * len(fact_rows)


def test_decode_many(benchmark, fact_codec, fact_rows):
    raw = fact_codec.encode_many(fact_rows)
    rows = benchmark(fact_codec.decode_many, raw)
    assert rows == fact_rows


def test_decode_strided(benchmark, fact_codec, fact_rows):
    pad = 4
    raw = fact_codec.encode_strided(fact_rows, pad)
    rows = benchmark(
        fact_codec.decode_strided, raw, len(fact_rows), pad
    )
    assert rows == fact_rows


def test_entry_codec_unpack(benchmark):
    codec = entry_codec("2q2d")
    entries = [(i, i * 3, float(i), float(i) / 2) for i in range(200)]
    buf = bytearray(len(entries) * codec.item_size)
    codec.pack_into(buf, 0, [v for e in entries for v in e], len(entries))
    result = benchmark(
        lambda: list(codec.iter_unpack_from(bytes(buf), 0, len(entries)))
    )
    assert result == entries


def test_leaf_round_trip(benchmark):
    arity, n_aggs = 3, 2
    leaf = RLeafNode(view_id=arity, arity=arity, n_aggs=n_aggs)
    for i in range(leaf_capacity(arity, n_aggs)):
        leaf.points.append((i, i % 7, i % 3))
        leaf.values.append((float(i), float(i * 2)))

    def round_trip():
        return RLeafNode.from_bytes(leaf.to_bytes())

    decoded = benchmark(round_trip)
    assert decoded.points == leaf.points
    assert decoded.values == leaf.values


def test_sort_group_aggregate_sum(benchmark, fact_rows):
    rows = sorted(fact_rows, key=lambda r: (r[0], r[1]))

    def aggregate():
        return list(
            sort_group_aggregate(rows, [0, 1], [(AggFunc.SUM, 2)])
        )

    out = benchmark(aggregate)
    assert len(out) == len({(r[0], r[1]) for r in rows})
    assert sum(r[2] for r in out) == sum(r[2] for r in rows)


def test_sort_group_aggregate_multi(benchmark, fact_rows):
    rows = sorted(fact_rows, key=lambda r: (r[0],))
    measures = [(AggFunc.SUM, 2), (AggFunc.COUNT, 2), (AggFunc.MAX, 2)]

    def aggregate():
        return list(sort_group_aggregate(rows, [0], measures))

    out = benchmark(aggregate)
    assert len(out) == len({r[0] for r in rows})
    # Output rows are (key, sum state, count state, max state).
    assert sum(r[1] for r in out) == sum(r[2] for r in rows)
    assert sum(r[2] for r in out) == len(rows)
