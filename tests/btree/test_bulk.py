"""Tests for bottom-up B+-tree bulk loading."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.bulk import bulk_load_btree
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap import RID


def make_pool(capacity=256):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def entries_for(n, arity=1):
    if arity == 1:
        return [((i,), RID(i, 0)) for i in range(n)]
    return [((i, i * 2), RID(i, 0)) for i in range(n)]


def test_bulk_load_empty():
    _disk, pool = make_pool()
    tree = bulk_load_btree(pool, 1, [])
    assert len(tree) == 0
    assert list(tree.scan_all()) == []


def test_bulk_load_single_leaf():
    _disk, pool = make_pool()
    tree = bulk_load_btree(pool, 1, entries_for(10))
    assert len(tree) == 10
    assert tree.height == 1
    assert [k[0] for k, _ in tree.scan_all()] == list(range(10))


def test_bulk_load_multi_level():
    _disk, pool = make_pool()
    n = 100_000
    tree = bulk_load_btree(pool, 1, entries_for(n))
    assert tree.height >= 2
    tree.check_invariants()
    assert tree.search((n - 1,)) == [RID(n - 1, 0)]
    assert tree.search((0,)) == [RID(0, 0)]
    assert tree.search((n,)) == []


def test_bulk_load_composite_keys():
    _disk, pool = make_pool()
    tree = bulk_load_btree(pool, 2, entries_for(5000, arity=2))
    assert tree.search((123, 246)) == [RID(123, 0)]
    tree.check_invariants()


def test_bulk_load_rejects_unsorted():
    _disk, pool = make_pool()
    bad = [((2,), RID(0, 0)), ((1,), RID(1, 0))]
    with pytest.raises(StorageError):
        bulk_load_btree(pool, 1, bad)


def test_bulk_load_rejects_bad_fill():
    _disk, pool = make_pool()
    with pytest.raises(ValueError):
        bulk_load_btree(pool, 1, [], fill=0.0)


def test_bulk_load_then_insert():
    """The tree stays a normal B+-tree after bulk load."""
    _disk, pool = make_pool()
    tree = bulk_load_btree(pool, 1, [((i * 2,), RID(i, 0)) for i in range(2000)])
    tree.insert((2001,), RID(9999, 0))
    tree.check_invariants()
    assert tree.search((2001,)) == [RID(9999, 0)]


def test_bulk_load_writes_are_mostly_sequential():
    disk, pool = make_pool(capacity=8)
    before = disk.cost_model.snapshot()
    bulk_load_btree(pool, 1, entries_for(50_000))
    pool.flush_all()
    delta = disk.cost_model.stats - before
    assert delta.sequential_writes > delta.random_writes


def test_full_fill_packs_tighter_than_default():
    disk_a, pool_a = make_pool()
    tree_a = bulk_load_btree(pool_a, 1, entries_for(20_000), fill=1.0)
    disk_b, pool_b = make_pool()
    tree_b = bulk_load_btree(pool_b, 1, entries_for(20_000), fill=0.7)
    assert tree_a.num_pages < tree_b.num_pages


@settings(max_examples=15, deadline=None)
@given(st.sets(st.integers(0, 10_000), max_size=600))
def test_bulk_load_equals_inserts_property(keys):
    sorted_keys = sorted(keys)
    entries = [((k,), RID(k, 0)) for k in sorted_keys]
    _disk, pool = make_pool()
    tree = bulk_load_btree(pool, 1, entries)
    tree.check_invariants()
    assert [k[0] for k, _ in tree.scan_all()] == sorted_keys
