"""Tests for composite key helpers."""

import pytest

from repro.btree.keys import (
    INT64_MAX,
    INT64_MIN,
    compare_keys,
    prefix_range,
    validate_key,
)


def test_validate_key_ok():
    assert validate_key([1, 2, 3], 3) == (1, 2, 3)


def test_validate_key_wrong_arity():
    with pytest.raises(ValueError):
        validate_key((1, 2), 3)


def test_validate_key_out_of_range():
    with pytest.raises(ValueError):
        validate_key((2**63,), 1)


def test_compare_keys():
    assert compare_keys((1, 2), (1, 3)) == -1
    assert compare_keys((2, 0), (1, 9)) == 1
    assert compare_keys((4, 4), (4, 4)) == 0


def test_prefix_range_full_prefix():
    low, high = prefix_range((7, 8, 9), 3)
    assert low == (7, 8, 9)
    assert high == (7, 8, 9)


def test_prefix_range_partial():
    low, high = prefix_range((5,), 3)
    assert low == (5, INT64_MIN, INT64_MIN)
    assert high == (5, INT64_MAX, INT64_MAX)


def test_prefix_range_empty_prefix_covers_everything():
    low, high = prefix_range((), 2)
    assert low == (INT64_MIN, INT64_MIN)
    assert high == (INT64_MAX, INT64_MAX)


def test_prefix_longer_than_arity_raises():
    with pytest.raises(ValueError):
        prefix_range((1, 2, 3), 2)


def test_prefix_range_semantics():
    low, high = prefix_range((5,), 2)
    assert low <= (5, 0) <= high
    assert not low <= (4, 10**9) <= high
    assert not low <= (6, -(10**9)) <= high
