"""Tests for B+-tree operations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.keys import prefix_range
from repro.btree.tree import BPlusTree
from repro.errors import KeyNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap import RID


def make_tree(arity=1, capacity=256):
    disk = DiskManager()
    pool = BufferPool(disk, capacity=capacity)
    return pool, BPlusTree(pool, arity)


def test_insert_and_search():
    _pool, tree = make_tree()
    tree.insert((5,), RID(1, 0))
    assert tree.search((5,)) == [RID(1, 0)]
    assert tree.search((6,)) == []
    assert len(tree) == 1


def test_search_one():
    _pool, tree = make_tree()
    assert tree.search_one((1,)) is None
    tree.insert((1,), RID(0, 0))
    assert tree.search_one((1,)) == RID(0, 0)


def test_many_inserts_cause_splits_and_stay_sorted():
    _pool, tree = make_tree()
    n = 5000
    order = list(range(n))
    random.Random(7).shuffle(order)
    for i in order:
        tree.insert((i,), RID(i, 0))
    assert tree.height > 1
    tree.check_invariants()
    keys = [k for k, _ in tree.scan_all()]
    assert keys == [(i,) for i in range(n)]


def test_range_scan():
    _pool, tree = make_tree()
    for i in range(100):
        tree.insert((i,), RID(i, 0))
    got = [k[0] for k, _ in tree.range_scan((10,), (20,))]
    assert got == list(range(10, 21))


def test_range_scan_empty_when_low_above_high():
    _pool, tree = make_tree()
    tree.insert((1,), RID(0, 0))
    assert list(tree.range_scan((5,), (2,))) == []


def test_range_scan_spans_leaves():
    _pool, tree = make_tree()
    n = 2000
    for i in range(n):
        tree.insert((i,), RID(i, 0))
    got = [k[0] for k, _ in tree.range_scan((0,), (n - 1,))]
    assert got == list(range(n))


def test_composite_keys_and_prefix_scan():
    _pool, tree = make_tree(arity=3)
    rows = [(a, b, c) for a in range(5) for b in range(5) for c in range(5)]
    random.Random(3).shuffle(rows)
    for i, key in enumerate(rows):
        tree.insert(key, RID(i, 0))
    low, high = prefix_range((2,), 3)
    got = [k for k, _ in tree.range_scan(low, high)]
    assert got == [(2, b, c) for b in range(5) for c in range(5)]
    low, high = prefix_range((2, 3), 3)
    got = [k for k, _ in tree.range_scan(low, high)]
    assert got == [(2, 3, c) for c in range(5)]


def test_duplicate_keys_supported():
    _pool, tree = make_tree()
    tree.insert((7,), RID(0, 0))
    tree.insert((7,), RID(1, 0))
    assert sorted(tree.search((7,))) == [RID(0, 0), RID(1, 0)]


def test_delete():
    _pool, tree = make_tree()
    for i in range(50):
        tree.insert((i,), RID(i, 0))
    tree.delete((25,))
    assert tree.search((25,)) == []
    assert len(tree) == 49
    tree.check_invariants()


def test_delete_specific_rid_among_duplicates():
    _pool, tree = make_tree()
    tree.insert((7,), RID(0, 0))
    tree.insert((7,), RID(1, 0))
    tree.delete((7,), RID(0, 0))
    assert tree.search((7,)) == [RID(1, 0)]


def test_delete_missing_raises():
    _pool, tree = make_tree()
    with pytest.raises(KeyNotFoundError):
        tree.delete((1,))


def test_descending_inserts():
    _pool, tree = make_tree()
    for i in reversed(range(3000)):
        tree.insert((i,), RID(i, 0))
    tree.check_invariants()


def test_survives_tiny_buffer_pool():
    """Every node round-trips through (de)serialization under eviction."""
    disk = DiskManager()
    pool = BufferPool(disk, capacity=4)
    tree = BPlusTree(pool, 1)
    n = 3000
    order = list(range(n))
    random.Random(11).shuffle(order)
    for i in order:
        tree.insert((i,), RID(i, 0))
    assert pool.stats.evictions > 0
    tree.check_invariants()
    assert [k[0] for k, _ in tree.scan_all()] == list(range(n))


def test_num_pages_grows():
    _pool, tree = make_tree()
    assert tree.num_pages == 1
    for i in range(3000):
        tree.insert((i,), RID(i, 0))
    assert tree.num_pages > 5


def test_invalid_arity_raises():
    disk = DiskManager()
    pool = BufferPool(disk)
    with pytest.raises(ValueError):
        BPlusTree(pool, 0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 500), max_size=400),
       st.integers(0, 500), st.integers(0, 500))
def test_range_scan_matches_naive_property(values, a, b):
    _pool, tree = make_tree()
    for i, v in enumerate(values):
        tree.insert((v,), RID(i, 0))
    low, high = min(a, b), max(a, b)
    got = sorted(k[0] for k, _ in tree.range_scan((low,), (high,)))
    expected = sorted(v for v in values if low <= v <= high)
    assert got == expected


def test_duplicate_runs_spanning_leaves():
    """Regression: a duplicate run longer than a leaf must be fully
    visible to search/range_scan/delete (descent must go leftmost)."""
    _pool, tree = make_tree()
    n = tree.leaf_capacity * 3  # the run spans at least three leaves
    for i in range(n):
        tree.insert((7,), RID(i, 0))
    tree.insert((6,), RID(n, 0))
    tree.insert((8,), RID(n + 1, 0))
    assert len(tree.search((7,))) == n
    got = [k for k, _ in tree.range_scan((7,), (7,))]
    assert len(got) == n
    # delete a specific rid living deep in the run
    tree.delete((7,), RID(n - 1, 0))
    assert len(tree.search((7,))) == n - 1
    tree.check_invariants()


def test_bulk_loaded_duplicate_runs_spanning_leaves():
    from repro.btree.bulk import bulk_load_btree
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import DiskManager

    pool = BufferPool(DiskManager(), capacity=64)
    entries = [((1,), RID(i, 0)) for i in range(600)]
    entries += [((2,), RID(1000 + i, 0)) for i in range(600)]
    tree = bulk_load_btree(pool, 1, entries)
    assert len(tree.search((1,))) == 600
    assert len(tree.search((2,))) == 600
    assert len(list(tree.range_scan((2,), (2,)))) == 600


# ----------------------------------------------------------------------
# pin balance: scans must unpin even when the iterator never finishes
# ----------------------------------------------------------------------
def pinned_pages(pool):
    return [p.page_id for p in pool._all_pages() if p.pin_count > 0]


def test_range_scan_abandoned_midway_unpins():
    pool, tree = make_tree()
    for i in range(2000):
        tree.insert((i,), RID(0, i))
    scan = tree.range_scan((0,), (1999,))
    for _ in range(3):
        next(scan)
    scan.close()  # abandon with the leaf page still current
    assert pinned_pages(pool) == []


def test_scan_all_break_unpins():
    pool, tree = make_tree()
    for i in range(2000):
        tree.insert((i,), RID(0, i))
    for count, _entry in enumerate(tree.scan_all()):
        if count == 5:
            break
    assert pinned_pages(pool) == []


def test_exhausted_scans_unpin():
    pool, tree = make_tree()
    for i in range(500):
        tree.insert((i,), RID(0, i))
    assert len(list(tree.scan_all())) == 500
    assert len(list(tree.range_scan((10,), (20,)))) == 11
    assert pinned_pages(pool) == []


def test_corrupt_leaf_chain_raises_without_leaking_pins():
    from repro.errors import IntegrityError

    pool, tree = make_tree()
    for i in range(2000):
        tree.insert((i,), RID(0, i))
    # corrupt the leftmost leaf to point at the (interior) root
    leaf_id = tree._leftmost_leaf()
    node, page = tree._fetch_node(leaf_id)
    node.next_leaf = tree.root_page_id
    tree._flush_node(node, page)
    with pytest.raises(IntegrityError):
        list(tree.scan_all())
    assert pinned_pages(pool) == []
