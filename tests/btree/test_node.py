"""Tests for B+-tree node serialization."""

from repro.btree.node import (
    InteriorNode,
    LeafNode,
    interior_capacity,
    leaf_capacity,
    node_type_of,
)
from repro.storage.heap import RID


def test_leaf_roundtrip():
    node = LeafNode(arity=2)
    node.keys = [(1, 2), (3, 4)]
    node.rids = [RID(10, 0), RID(11, 5)]
    node.next_leaf = 42
    clone = LeafNode.from_bytes(node.to_bytes(), arity=2)
    assert clone.keys == node.keys
    assert clone.rids == node.rids
    assert clone.next_leaf == 42


def test_leaf_roundtrip_empty():
    node = LeafNode(arity=3)
    clone = LeafNode.from_bytes(node.to_bytes(), arity=3)
    assert clone.keys == []
    assert clone.next_leaf == -1


def test_leaf_roundtrip_at_capacity():
    arity = 3
    cap = leaf_capacity(arity)
    node = LeafNode(arity)
    node.keys = [(i, i, i) for i in range(cap)]
    node.rids = [RID(i, 0) for i in range(cap)]
    clone = LeafNode.from_bytes(node.to_bytes(), arity)
    assert len(clone.keys) == cap


def test_interior_roundtrip():
    node = InteriorNode(arity=1)
    node.keys = [(10,), (20,)]
    node.children = [100, 101, 102]
    clone = InteriorNode.from_bytes(node.to_bytes(), arity=1)
    assert clone.keys == node.keys
    assert clone.children == node.children


def test_interior_roundtrip_at_capacity():
    arity = 2
    cap = interior_capacity(arity)
    node = InteriorNode(arity)
    node.keys = [(i, i) for i in range(cap)]
    node.children = list(range(cap + 1))
    clone = InteriorNode.from_bytes(node.to_bytes(), arity)
    assert len(clone.keys) == cap
    assert len(clone.children) == cap + 1


def test_node_type_peek():
    leaf = LeafNode(1)
    interior = InteriorNode(1)
    interior.children = [0]
    assert node_type_of(leaf.to_bytes()) == 1
    assert node_type_of(interior.to_bytes()) == 2


def test_capacities_positive_for_reasonable_arity():
    for arity in range(1, 9):
        assert leaf_capacity(arity) > 10
        assert interior_capacity(arity) > 10
