"""Model-based stateful property tests (hypothesis state machines).

Each machine drives a storage structure through random operation sequences
while maintaining a trivially-correct in-memory model, then checks full
agreement.  These are the tests most likely to find ordering, split, or
pin-accounting bugs that unit tests miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.btree.tree import BPlusTree
from repro.core.cubetree import Cubetree
from repro.relational.view import ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.codec import RecordCodec, float_column, int_column
from repro.storage.disk import DiskManager
from repro.storage.heap import HeapFile
from repro.errors import KeyNotFoundError


class BTreeMachine(RuleBasedStateMachine):
    """B+-tree against a sorted-list model (duplicates allowed)."""

    @initialize()
    def setup(self):
        disk = DiskManager()
        # Tiny pool: every operation round-trips serialization.
        self.pool = BufferPool(disk, capacity=8)
        self.tree = BPlusTree(self.pool, 1)
        self.model = []  # list of (key, rid)
        self.next_rid = 0

    @rule(key=st.integers(0, 200))
    def insert(self, key):
        from repro.storage.heap import RID

        rid = RID(self.next_rid, 0)
        self.next_rid += 1
        self.tree.insert((key,), rid)
        self.model.append(((key,), rid))

    @rule(key=st.integers(0, 200))
    def delete_one(self, key):
        matching = [rid for k, rid in self.model if k == (key,)]
        if matching:
            self.tree.delete((key,), matching[0])
            self.model.remove(((key,), matching[0]))
        else:
            try:
                self.tree.delete((key,))
                raise AssertionError("delete of absent key must fail")
            except KeyNotFoundError:
                pass

    @rule(key=st.integers(0, 200))
    def lookup(self, key):
        got = sorted(self.tree.search((key,)))
        expected = sorted(rid for k, rid in self.model if k == (key,))
        assert got == expected

    @rule(low=st.integers(0, 200), high=st.integers(0, 200))
    def range_scan(self, low, high):
        low, high = min(low, high), max(low, high)
        got = sorted(self.tree.range_scan((low,), (high,)))
        expected = sorted(
            (k, rid) for k, rid in self.model if low <= k[0] <= high
        )
        assert got == expected

    @invariant()
    def sorted_and_counted(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)

    @invariant()
    def no_leaked_pins(self):
        assert all(
            page.pin_count == 0
            for page in self.pool._frames.values()
        )


class HeapMachine(RuleBasedStateMachine):
    """Heap file against a dict model keyed by RID."""

    @initialize()
    def setup(self):
        disk = DiskManager()
        self.pool = BufferPool(disk, capacity=4)
        codec = RecordCodec([int_column(), float_column()])
        self.heap = HeapFile(self.pool, codec)
        self.model = {}

    @rule(a=st.integers(-10**6, 10**6),
          b=st.floats(allow_nan=False, allow_infinity=False, width=32))
    def insert(self, a, b):
        rid = self.heap.insert((a, float(b)))
        assert rid not in self.model
        self.model[rid] = (a, float(b))

    @rule(data=st.data())
    def update(self, data):
        if not self.model:
            return
        rid = data.draw(st.sampled_from(sorted(self.model)))
        new = (self.model[rid][0] + 1, self.model[rid][1])
        self.heap.update(rid, new)
        self.model[rid] = new

    @rule(data=st.data())
    def delete(self, data):
        if not self.model:
            return
        rid = data.draw(st.sampled_from(sorted(self.model)))
        self.heap.delete(rid)
        del self.model[rid]

    @rule(data=st.data())
    def fetch(self, data):
        if not self.model:
            return
        rid = data.draw(st.sampled_from(sorted(self.model)))
        assert self.heap.fetch(rid) == self.model[rid]

    @invariant()
    def scan_matches_model(self):
        got = dict(self.heap.scan())
        assert got == self.model
        assert len(self.heap) == len(self.model)


class CubetreeMachine(RuleBasedStateMachine):
    """A two-view Cubetree through repeated merge-packs vs dict models."""

    @initialize()
    def setup(self):
        disk = DiskManager()
        self.pool = BufferPool(disk, capacity=16)
        self.v1 = ViewDefinition("V1", ("a",))
        self.v2 = ViewDefinition("V2", ("a", "b"))
        self.tree = Cubetree(self.pool, 2, [self.v1, self.v2])
        self.tree.build({"V1": [], "V2": []})
        self.m1 = {}
        self.m2 = {}

    @rule(deltas=st.dictionaries(
        st.integers(1, 30), st.integers(1, 50), min_size=1, max_size=8,
    ))
    def merge_v1(self, deltas):
        rows = [(k, float(v)) for k, v in deltas.items()]
        self.tree.update({"V1": rows})
        for k, v in deltas.items():
            self.m1[k] = self.m1.get(k, 0.0) + v

    @rule(deltas=st.dictionaries(
        st.tuples(st.integers(1, 15), st.integers(1, 15)),
        st.integers(1, 50), min_size=1, max_size=8,
    ))
    def merge_v2(self, deltas):
        rows = [(a, b, float(v)) for (a, b), v in deltas.items()]
        self.tree.update({"V2": rows})
        for key, v in deltas.items():
            self.m2[key] = self.m2.get(key, 0.0) + v

    @rule(a=st.integers(1, 30))
    def point_query_v1(self, a):
        got = dict(self.tree.query("V1", {"a": a}))
        expected = (
            {(a,): (self.m1[a],)} if a in self.m1 else {}
        )
        assert got == expected

    @rule(b=st.integers(1, 15))
    def slice_query_v2(self, b):
        got = {
            point: values[0]
            for point, values in self.tree.query("V2", {"b": b})
        }
        expected = {
            (a_, b_): total
            for (a_, b_), total in self.m2.items()
            if b_ == b
        }
        assert got == expected

    @invariant()
    def full_contents_match(self):
        assert dict(self.tree.query("V1", {})) == {
            (k,): (v,) for k, v in self.m1.items()
        }
        assert dict(self.tree.query("V2", {})) == {
            k: (v,) for k, v in self.m2.items()
        }
        self.tree.tree.check_invariants()


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestHeapMachine = HeapMachine.TestCase
TestHeapMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestCubetreeMachine = CubetreeMachine.TestCase
TestCubetreeMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
