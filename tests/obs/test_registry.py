"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs import MetricsRegistry, get_registry
from repro.obs.registry import DEFAULT_RESERVOIR, Histogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert counter.snapshot() == 0
        counter.inc()
        counter.inc(5)
        assert counter.snapshot() == 6

    def test_bare_attribute_increment_is_equivalent(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.value += 3
        counter.inc(2)
        assert counter.snapshot() == 5

    def test_fractional_amounts(self):
        registry = MetricsRegistry()
        counter = registry.counter("ms")
        counter.inc(0.8)
        counter.inc(8.0)
        assert counter.snapshot() == pytest.approx(8.8)

    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.snapshot() == 3


class TestHistogram:
    def test_empty_snapshot(self):
        hist = Histogram("h")
        snap = hist.snapshot()
        assert snap == {
            "count": 0, "sum": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "max": 0.0,
        }

    def test_summary_statistics(self):
        hist = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(110.0)
        assert snap["mean"] == pytest.approx(22.0)
        assert snap["max"] == 100.0
        assert snap["p50"] == 3.0

    def test_percentiles_over_uniform_samples(self):
        hist = Histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(0.50) == pytest.approx(51.0)
        assert hist.percentile(0.95) == pytest.approx(96.0)
        assert hist.percentile(0.0) == 1.0

    def test_reservoir_downsamples_but_exact_aggregates(self):
        hist = Histogram("h", reservoir=64)
        n = 10_000
        for v in range(n):
            hist.observe(float(v))
        assert hist.count == n
        assert hist.total == pytest.approx(sum(range(n)))
        assert hist.max == float(n - 1)
        # The reservoir stayed bounded but still spans the distribution.
        assert len(hist._samples) < 64
        assert hist.percentile(0.5) == pytest.approx(n / 2, rel=0.1)

    def test_default_reservoir_bound(self):
        hist = Histogram("h")
        for v in range(3 * DEFAULT_RESERVOIR):
            hist.observe(float(v))
        assert len(hist._samples) <= DEFAULT_RESERVOIR


class TestRegistry:
    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1
        # Names come out sorted (stable JSON diffs).
        assert list(snap["counters"]) == ["a", "b"]

    def test_reset_zeroes_in_place_keeping_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h")
        counter.inc(5)
        hist.observe(1.0)
        registry.reset()
        assert counter.snapshot() == 0
        assert hist.snapshot()["count"] == 0
        # The old handle still feeds the registry after reset.
        counter.value += 1
        assert registry.snapshot()["counters"]["c"] == 1
        assert registry.counter("c") is counter

    def test_get_by_name(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h")
        assert registry.get("c") is counter
        assert registry.get("h") is hist
        assert registry.get("nope") is None

    def test_process_registry_is_shared(self):
        assert get_registry() is get_registry()

    def test_hot_path_counters_are_preregistered(self):
        # Importing the instrumented modules registers their metrics, so
        # bench consumers can rely on the names existing.
        import repro.core.engine  # noqa: F401
        import repro.storage.buffer  # noqa: F401
        import repro.storage.iomodel  # noqa: F401

        snap = get_registry().snapshot()
        for name in (
            "io.reads.sequential", "io.reads.random",
            "io.writes.sequential", "io.writes.random",
            "buffer.hits", "buffer.misses", "buffer.evictions",
            "query.cubetree.count",
        ):
            assert name in snap["counters"], name
        assert "query.cubetree.simulated_ms" in snap["histograms"]


class TestThreadSafety:
    """The method API must not lose updates under concurrent writers.

    The serving layer updates metrics from HTTP workers, the admission
    executor, and the refresh thread at once; lost increments here would
    silently corrupt the pin/in-flight gauges the tests key on.
    """

    THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, work):
        import threading

        barrier = threading.Barrier(self.THREADS)

        def body(index):
            barrier.wait()
            for step in range(self.PER_THREAD):
                work(index, step)

        threads = [
            threading.Thread(target=body, args=(i,), daemon=True)
            for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)

    def test_counter_inc_loses_nothing(self):
        counter = MetricsRegistry().counter("c")
        self._hammer(lambda i, s: counter.inc())
        assert counter.snapshot() == self.THREADS * self.PER_THREAD

    def test_gauge_add_balances_to_zero(self):
        gauge = MetricsRegistry().gauge("g")

        def work(index, step):
            gauge.add(1)
            gauge.add(-1)

        self._hammer(work)
        assert gauge.snapshot() == 0

    def test_histogram_observe_exact_count_and_sum(self):
        histogram = MetricsRegistry().histogram("h")
        self._hammer(lambda i, s: histogram.observe(1.0))
        snap = histogram.snapshot()
        expected = self.THREADS * self.PER_THREAD
        assert snap["count"] == expected
        assert snap["sum"] == pytest.approx(float(expected))
        assert snap["p50"] == 1.0 and snap["max"] == 1.0

    def test_snapshot_during_concurrent_writes_is_coherent(self):
        """Registry snapshots taken mid-storm never tear a histogram
        (count moved but sum not) or crash on a mutating reservoir."""
        import threading

        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        counter = registry.counter("c")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(2.0)
                counter.inc()

        threads = [
            threading.Thread(target=writer, daemon=True) for _ in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()
                h = snap["histograms"]["h"]
                # sum must equal count * 2.0 exactly: a torn read would
                # break the identity.
                assert h["sum"] == pytest.approx(h["count"] * 2.0)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30.0)

    def test_reset_during_concurrent_writes_is_safe(self):
        import threading

        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(1.0)

        threads = [
            threading.Thread(target=writer, daemon=True) for _ in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                registry.reset()
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
        histogram.reset()
        assert histogram.snapshot()["count"] == 0
