"""Tests for the ``repro bench`` harness: JSON schema, comparison
semantics, and the CLI regression gate."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    SCHEMA_VERSION,
    SUITES,
    compare,
    format_report,
    load_result,
    run_suite,
)

#: Tiny but non-trivial: ~hundreds of fact rows.
SCALE = 0.0005


@pytest.fixture(scope="module")
def smoke_result():
    return run_suite("smoke", scale=SCALE, seed=42, queries_per_node=2)


class TestRunSuite:
    def test_document_shape(self, smoke_result):
        assert smoke_result["schema_version"] == SCHEMA_VERSION
        assert smoke_result["suite"] == "smoke"
        assert smoke_result["config"]["scale_factor"] == SCALE
        env = smoke_result["env"]
        assert env["page_size"] == 4096
        assert "repro_version" in env
        names = [p["name"] for p in smoke_result["phases"]]
        assert names == ["load", "queries", "update"]

    def test_phases_carry_io_buffer_and_timings(self, smoke_result):
        for phase in smoke_result["phases"]:
            io = phase["io"]
            for key in ("sequential_reads", "random_reads",
                        "sequential_writes", "random_writes"):
                assert isinstance(io[key], int)
            buf = phase["buffer"]
            assert buf["accesses"] == buf["hits"] + buf["misses"]
            assert buf["hit_ratio"] is None or 0.0 <= buf["hit_ratio"] <= 1.0
            assert phase["simulated_ms"] >= 0.0
            assert phase["wall_ms"] >= 0.0
        # The load phase did real work.
        load = smoke_result["phases"][0]
        assert load["simulated_ms"] > 0.0
        assert load["io"]["sequential_writes"] > 0

    def test_metrics_snapshot_embedded(self, smoke_result):
        metrics = smoke_result["metrics"]
        counters = metrics["counters"]
        assert counters["io.writes.sequential"] > 0
        assert counters["rtree.pack.leaves"] > 0
        # Tracing was forced on, so spans are present.
        assert counters["span.engine.materialize.count"] >= 1
        assert metrics["histograms"]["span.engine.materialize.ms"]["count"] >= 1

    def test_document_is_json_serializable(self, smoke_result):
        text = json.dumps(smoke_result)
        assert json.loads(text)["suite"] == "smoke"

    def test_deterministic_simulated_costs(self, smoke_result):
        again = run_suite("smoke", scale=SCALE, seed=42, queries_per_node=2)
        for a, b in zip(smoke_result["phases"], again["phases"]):
            assert a["simulated_ms"] == b["simulated_ms"]
            assert a["io"] == b["io"]
            assert a["buffer"] == b["buffer"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")

    def test_suite_names(self):
        assert SUITES == (
            "smoke", "loading", "queries", "updates", "scalability",
            "serving", "sharding", "columnar",
        )


class TestCompare:
    def _doc(self, phases):
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": "smoke",
            "phases": [
                {"name": name, "simulated_ms": ms} for name, ms in phases
            ],
        }

    def test_no_regression_on_identical_runs(self):
        doc = self._doc([("load", 100.0), ("queries", 50.0)])
        assert compare(doc, copy.deepcopy(doc)) == []

    def test_flags_regression_past_threshold(self):
        old = self._doc([("load", 100.0), ("queries", 50.0)])
        new = self._doc([("load", 130.0), ("queries", 50.0)])
        regs = compare(old, new, threshold=0.2)
        assert len(regs) == 1
        assert regs[0]["phase"] == "load"
        assert regs[0]["ratio"] == pytest.approx(1.3)

    def test_within_threshold_passes(self):
        old = self._doc([("load", 100.0)])
        new = self._doc([("load", 119.0)])
        assert compare(old, new, threshold=0.2) == []

    def test_wall_only_phases_never_gate(self):
        # Concurrency phases (serving suite) are timing-dependent; even
        # a huge simulated_ms delta on them must not fail a comparison.
        old = self._doc([("serve_queries", 100.0)])
        new = self._doc([("serve_queries", 100.0)])
        old["phases"].append(
            {"name": "concurrent_refresh", "simulated_ms": 10.0,
             "wall_only": True}
        )
        new["phases"].append(
            {"name": "concurrent_refresh", "simulated_ms": 500.0,
             "wall_only": True}
        )
        assert compare(old, new) == []

    def test_improvement_passes(self):
        old = self._doc([("load", 100.0)])
        new = self._doc([("load", 10.0)])
        assert compare(old, new) == []

    def test_near_zero_baseline_skipped(self):
        old = self._doc([("queries", 0.1)])
        new = self._doc([("queries", 0.9)])
        assert compare(old, new) == []

    def test_unmatched_phases_ignored(self):
        old = self._doc([("load", 100.0)])
        new = self._doc([("renamed", 500.0)])
        assert compare(old, new) == []

    def test_suite_mismatch_rejected(self):
        old = self._doc([])
        new = dict(self._doc([]), suite="queries")
        with pytest.raises(ValueError, match="cannot compare"):
            compare(old, new)


class TestFormatReport:
    def test_report_table(self, smoke_result):
        report = format_report(smoke_result)
        assert "suite: smoke" in report
        assert "load" in report
        assert "hit ratio" in report
        assert "total:" in report


class TestLoadResult:
    def test_round_trip(self, tmp_path, smoke_result):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(smoke_result))
        assert load_result(str(path))["suite"] == "smoke"

    def test_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError, match="schema_version"):
            load_result(str(path))


class TestCli:
    def test_bench_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        code = main([
            "bench", "--suite", "smoke", "--scale", str(SCALE),
            "--queries", "2", "--out", str(out), "--report",
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["phases"]
        captured = capsys.readouterr().out
        assert "suite: smoke" in captured

    def test_compare_fails_on_injected_regression(
        self, tmp_path, smoke_result, capsys
    ):
        # Baseline doctored to be 2x faster than reality: the fresh run
        # then reads as a +100% simulated-ms regression and must fail.
        baseline = copy.deepcopy(smoke_result)
        for phase in baseline["phases"]:
            phase["simulated_ms"] /= 2.0
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(baseline))

        out = tmp_path / "new.json"
        code = main([
            "bench", "--suite", "smoke", "--scale", str(SCALE),
            "--queries", "2", "--out", str(out),
            "--compare", str(base_path), "--threshold", "0.2",
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
