"""Unit tests for span tracing: on/off switching and recorded metrics."""

import pytest

from repro.obs import get_registry, set_tracing, trace, tracing_enabled
from repro.obs.trace import _NOOP, tracing_override


@pytest.fixture(autouse=True)
def _restore_tracing():
    """Leave the process-wide tracing switch the way we found it."""
    before = tracing_override()
    yield
    set_tracing(before)


def test_disabled_returns_shared_noop():
    set_tracing(False)
    assert not tracing_enabled()
    span = trace("anything", pages=5)
    assert span is _NOOP
    # And it is a working no-op context manager.
    with span:
        pass


def test_enabled_records_duration_and_count():
    set_tracing(True)
    registry = get_registry()
    registry.counter("span.test.op.count").reset()
    registry.histogram("span.test.op.ms").reset()

    with trace("test.op"):
        pass
    with trace("test.op"):
        pass

    assert registry.counter("span.test.op.count").snapshot() == 2
    hist = registry.histogram("span.test.op.ms").snapshot()
    assert hist["count"] == 2
    assert hist["max"] >= 0.0


def test_numeric_tags_accumulate_as_counters():
    set_tracing(True)
    registry = get_registry()
    registry.counter("span.test.tags.pages").reset()

    with trace("test.tags", pages=7, label="ignored", flag=True):
        pass
    with trace("test.tags", pages=3):
        pass

    assert registry.counter("span.test.tags.pages").snapshot() == 10
    # String and bool tags never register counters.
    assert registry.get("span.test.tags.label") is None
    assert registry.get("span.test.tags.flag") is None


def test_span_records_even_when_body_raises():
    set_tracing(True)
    registry = get_registry()
    registry.counter("span.test.err.count").reset()
    with pytest.raises(RuntimeError):
        with trace("test.err"):
            raise RuntimeError("boom")
    assert registry.counter("span.test.err.count").snapshot() == 1


def test_set_tracing_none_defers_to_environment(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    set_tracing(None)
    assert not tracing_enabled()

    monkeypatch.setenv("REPRO_TRACE", "1")
    set_tracing(None)  # re-resolve
    assert tracing_enabled()

    monkeypatch.setenv("REPRO_TRACE", "false")
    set_tracing(None)
    assert not tracing_enabled()


def test_override_wins_over_environment(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    set_tracing(False)
    assert not tracing_enabled()
    assert tracing_override() is False
