"""Tests for QueryResult and report types."""

import pytest

from repro.core.reports import LoadReport, PhaseReport, UpdateReport
from repro.query.result import QueryResult
from repro.storage.iomodel import IOStats


def test_result_len():
    result = QueryResult(rows=[(1, 2.0), (3, 4.0)])
    assert len(result) == 2


def test_scalar_ok():
    assert QueryResult(rows=[(42.0,)]).scalar() == 42.0


def test_scalar_rejects_multiple_rows():
    with pytest.raises(ValueError):
        QueryResult(rows=[(1.0,), (2.0,)]).scalar()


def test_scalar_rejects_wide_row():
    with pytest.raises(ValueError):
        QueryResult(rows=[(1, 2.0)]).scalar()


def test_phase_report_simulated_ms():
    report = PhaseReport(io=IOStats(random_reads=2, simulated_ms=16.0,
                                    overhead_ms=4.0))
    assert report.simulated_ms == 20.0


def test_load_report_totals():
    report = LoadReport(phases={
        "views": PhaseReport(io=IOStats(simulated_ms=10.0), wall_ms=1.0),
        "indexes": PhaseReport(io=IOStats(simulated_ms=5.0), wall_ms=2.0),
    })
    assert report.total_simulated_ms == 15.0
    assert report.total_wall_ms == 3.0


def test_update_report_simulated_ms():
    report = UpdateReport(io=IOStats(simulated_ms=7.0, overhead_ms=3.0))
    assert report.simulated_ms == 10.0


def test_errors_form_one_hierarchy():
    import repro.errors as errors

    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name
