"""Tests for the random query generator."""

import pytest

from repro.errors import QueryError
from repro.query.generator import RandomQueryGenerator
from repro.warehouse.tpcd import TPCDGenerator

NODE = ("partkey", "suppkey", "custkey")


def make_gen(seed=0):
    data = TPCDGenerator(scale_factor=0.001, seed=1).generate()
    return data.schema, RandomQueryGenerator(data.schema, seed=seed)


def test_query_types_exclude_unbound_by_default():
    _schema, gen = make_gen()
    types = gen.query_types(("a", "b"))
    assert set(types) == {("a",), ("b",), ("a", "b")}


def test_query_types_include_unbound():
    _schema, gen = make_gen()
    types = gen.query_types(("a",), include_unbound=True)
    assert set(types) == {(), ("a",)}


def test_super_aggregate_node_has_single_type():
    _schema, gen = make_gen()
    assert gen.query_types(()) == [()]


def test_total_types_across_lattice_is_27():
    """Paper Sec. 3.1: sum of 2^|V| over the 3-attribute lattice."""
    from itertools import combinations

    _schema, gen = make_gen()
    total = 0
    for size in range(len(NODE) + 1):
        for node in combinations(NODE, size):
            total += len(gen.query_types(node, include_unbound=True))
    assert total == 27


def test_generated_queries_live_on_node():
    _schema, gen = make_gen()
    queries = gen.generate_for_node(NODE, 50)
    for q in queries:
        assert q.node == frozenset(NODE)
        assert len(q.bindings) >= 1  # unbound excluded


def test_generated_values_within_domains():
    schema, gen = make_gen()
    queries = gen.generate_for_node(("partkey",), 30)
    domain = set(schema.key_domain("partkey"))
    for q in queries:
        for attr, value in q.bindings:
            assert attr == "partkey"
            assert value in domain


def test_deterministic_given_seed():
    _schema, gen_a = make_gen(seed=9)
    _schema, gen_b = make_gen(seed=9)
    assert (gen_a.generate_for_node(NODE, 20)
            == gen_b.generate_for_node(NODE, 20))


def test_different_seed_differs():
    _schema, gen_a = make_gen(seed=1)
    _schema, gen_b = make_gen(seed=2)
    assert (gen_a.generate_for_node(NODE, 20)
            != gen_b.generate_for_node(NODE, 20))


def test_workload_covers_all_nodes():
    _schema, gen = make_gen()
    nodes = [NODE, ("partkey",), ()]
    workload = gen.generate_workload(nodes, per_node=5,
                                     include_unbound=True)
    assert [node for node, _ in workload] == [tuple(n) for n in nodes]
    assert all(len(batch) == 5 for _, batch in workload)


def test_hierarchy_attribute_values():
    schema, gen = make_gen()
    queries = gen.generate_for_node(("brand",), 10)
    brands = {row[2] for row in schema.dimensions["partkey"].rows}
    for q in queries:
        assert q.bindings[0][1] in brands


def test_negative_count_raises():
    _schema, gen = make_gen()
    with pytest.raises(QueryError):
        gen.generate_for_node(NODE, -1)


def test_unknown_attribute_raises():
    _schema, gen = make_gen()
    with pytest.raises(QueryError):
        gen.generate_for_node(("nope",), 1)


def test_range_queries_generated_within_domain():
    schema, gen = make_gen()
    queries = gen.generate_range_queries(NODE, 20, width_fraction=0.1)
    for q in queries:
        assert q.bindings == ()
        assert len(q.ranges) >= 1
        for attr, low, high in q.ranges:
            domain = set(schema.key_domain(attr))
            assert low <= high
            assert low in domain and high in domain


def test_range_queries_width_fraction_validated():
    _schema, gen = make_gen()
    with pytest.raises(QueryError):
        gen.generate_range_queries(NODE, 1, width_fraction=0.0)
    with pytest.raises(QueryError):
        gen.generate_range_queries(NODE, -1)


def test_range_queries_deterministic():
    _schema, a = make_gen(seed=4)
    _schema, b = make_gen(seed=4)
    assert (a.generate_range_queries(NODE, 10)
            == b.generate_range_queries(NODE, 10))
