"""Tests for cost-based query routing (page-level cost model)."""

import pytest

from repro.cube.lattice import CubeLattice
from repro.errors import QueryError
from repro.query.router import AccessPath, QueryRouter
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition

PSC = ("partkey", "suppkey", "custkey")
DISTINCT = {"partkey": 2000.0, "suppkey": 100.0, "custkey": 1500.0}


def router():
    return QueryRouter(CubeLattice(PSC), DISTINCT)


# TPC-D SF-1 statistics (the paper's setting): |V_psc| ~ 6M, |V_ps| ~ 800k.
PSC_DISTINCT_SF1 = {"partkey": 200_000.0, "suppkey": 10_000.0,
                    "custkey": 150_000.0}


def psc_path(clustered=("partkey", "suppkey", "custkey"), size=6_000_000.0):
    v_psc = ViewDefinition("V_psc", PSC)
    return AccessPath(
        v_psc, size,
        orders=(
            ("custkey", "partkey", "suppkey"),
            ("partkey", "suppkey", "custkey"),
            ("suppkey", "custkey", "partkey"),
        ),
        rows_per_page=120,
        clustered=clustered,
    )


def ps_path(size=800_000.0):
    v_ps = ViewDefinition("V_ps", ("partkey", "suppkey"))
    return AccessPath(v_ps, size, (), rows_per_page=150)


def sf1_router():
    return QueryRouter(CubeLattice(PSC), PSC_DISTINCT_SF1)


def test_route_prefers_indexed_apex_for_selective_binding():
    """The paper's Q1 at SF-1 sizes: the indexed apex view beats scanning
    the (unindexed) 800k-row V_ps."""
    q = SliceQuery(("suppkey",), (("partkey", 7),))
    decision = sf1_router().route(q, [psc_path(), ps_path()])
    assert decision.view_name == "V_psc"
    assert decision.order == ("partkey", "suppkey", "custkey")
    assert decision.needs_reaggregation


def test_tiny_view_scan_beats_index_descent():
    """A view that fits in a couple of pages is cheaper to scan than to
    reach through three random index-descent pages."""
    q = SliceQuery((), (("suppkey", 7),))
    v_s = ViewDefinition("V_s", ("suppkey",))
    tiny = AccessPath(v_s, 100.0, (("suppkey",),), rows_per_page=200,
                      clustered=("suppkey",))
    decision = router().route(q, [tiny])
    assert decision.order is None
    assert decision.est_cost < 3 * 8.0


def test_route_scan_when_no_order_matches():
    q = SliceQuery(("partkey",), (("suppkey", 1),))
    decision = router().route(q, [ps_path()])
    assert decision.order is None
    assert decision.prefix == ()


def test_route_rejects_unanswerable_query():
    q = SliceQuery(("custkey",), ())
    with pytest.raises(QueryError):
        router().route(q, [ps_path()])


def test_clustered_access_beats_unclustered():
    """Same index keys; only the clustered one fetches sequentially."""
    q = SliceQuery(("suppkey", "partkey"), (("custkey", 3),))
    # Bound {custkey}: order (c, p, s) has a usable prefix; ~40 matches.
    clustered = psc_path(clustered=("custkey", "partkey", "suppkey"))
    unclustered = psc_path(clustered=("partkey", "suppkey", "custkey"))
    d_clustered = sf1_router().route(q, [clustered])
    d_unclustered = sf1_router().route(q, [unclustered])
    assert d_clustered.order == ("custkey", "partkey", "suppkey")
    assert d_unclustered.order == ("custkey", "partkey", "suppkey")
    assert d_clustered.est_cost < d_unclustered.est_cost


def test_unclustered_fetch_priced_as_random_pages():
    """~600 unclustered matches cost ~600 random pages — still cheaper
    than scanning 6M rows, but ~60x a clustered fetch of the same rows."""
    q = SliceQuery(("partkey", "custkey"), (("suppkey", 9),))
    unclustered = sf1_router().route(q, [psc_path()])
    assert unclustered.order == ("suppkey", "custkey", "partkey")
    clustered = sf1_router().route(
        q, [psc_path(clustered=("suppkey", "custkey", "partkey"))]
    )
    assert unclustered.est_cost > 30 * clustered.est_cost


def test_route_picks_longest_prefix_order():
    q = SliceQuery(("suppkey",), (("custkey", 3), ("partkey", 9)))
    decision = router().route(
        q, [psc_path(clustered=("custkey", "partkey", "suppkey"))]
    )
    assert decision.order == ("custkey", "partkey", "suppkey")
    assert decision.prefix == ("custkey", "partkey")


def test_route_exact_view_without_reaggregation_wins_ties():
    v_exact = ViewDefinition("V_c", ("custkey",))
    v_fine = ViewDefinition("V_sc", ("suppkey", "custkey"))
    exact = AccessPath(v_exact, 10.0, (("custkey",),),
                       clustered=("custkey",))
    fine = AccessPath(v_fine, 10.0, (("custkey", "suppkey"),),
                      clustered=("custkey", "suppkey"))
    q = SliceQuery((), (("custkey", 5),))
    decision = router().route(q, [fine, exact])
    assert decision.view_name == "V_c"
    assert not decision.needs_reaggregation


def test_route_with_hierarchy_attribute():
    lattice = CubeLattice(PSC, hierarchies={"brand": "partkey"})
    r = QueryRouter(lattice, dict(DISTINCT, brand=25.0))
    q = SliceQuery(("brand",), (("custkey", 1),))
    decision = r.route(
        q, [psc_path(clustered=("custkey", "partkey", "suppkey"))]
    )
    assert decision.view_name == "V_psc"
    assert decision.prefix == ("custkey",)


def test_decision_describe():
    q = SliceQuery(("suppkey",), (("partkey", 7),))
    decision = router().route(q, [psc_path()])
    assert "V_psc" in decision.describe()
    assert "ms" in decision.describe()
