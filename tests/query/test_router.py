"""Tests for cost-based query routing (page-level cost model)."""

import pytest

from repro.cube.lattice import CubeLattice
from repro.errors import QueryError
from repro.query.router import AccessPath, QueryRouter
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition

PSC = ("partkey", "suppkey", "custkey")
DISTINCT = {"partkey": 2000.0, "suppkey": 100.0, "custkey": 1500.0}


def router():
    return QueryRouter(CubeLattice(PSC), DISTINCT)


# TPC-D SF-1 statistics (the paper's setting): |V_psc| ~ 6M, |V_ps| ~ 800k.
PSC_DISTINCT_SF1 = {"partkey": 200_000.0, "suppkey": 10_000.0,
                    "custkey": 150_000.0}


def psc_path(clustered=("partkey", "suppkey", "custkey"), size=6_000_000.0):
    v_psc = ViewDefinition("V_psc", PSC)
    return AccessPath(
        v_psc, size,
        orders=(
            ("custkey", "partkey", "suppkey"),
            ("partkey", "suppkey", "custkey"),
            ("suppkey", "custkey", "partkey"),
        ),
        rows_per_page=120,
        clustered=clustered,
    )


def ps_path(size=800_000.0):
    v_ps = ViewDefinition("V_ps", ("partkey", "suppkey"))
    return AccessPath(v_ps, size, (), rows_per_page=150)


def sf1_router():
    return QueryRouter(CubeLattice(PSC), PSC_DISTINCT_SF1)


def test_route_prefers_indexed_apex_for_selective_binding():
    """The paper's Q1 at SF-1 sizes: the indexed apex view beats scanning
    the (unindexed) 800k-row V_ps."""
    q = SliceQuery(("suppkey",), (("partkey", 7),))
    decision = sf1_router().route(q, [psc_path(), ps_path()])
    assert decision.view_name == "V_psc"
    assert decision.order == ("partkey", "suppkey", "custkey")
    assert decision.needs_reaggregation


def test_tiny_view_scan_beats_index_descent():
    """A view that fits in a couple of pages is cheaper to scan than to
    reach through three random index-descent pages."""
    q = SliceQuery((), (("suppkey", 7),))
    v_s = ViewDefinition("V_s", ("suppkey",))
    tiny = AccessPath(v_s, 100.0, (("suppkey",),), rows_per_page=200,
                      clustered=("suppkey",))
    decision = router().route(q, [tiny])
    assert decision.order is None
    assert decision.est_cost < 3 * 8.0


def test_route_scan_when_no_order_matches():
    q = SliceQuery(("partkey",), (("suppkey", 1),))
    decision = router().route(q, [ps_path()])
    assert decision.order is None
    assert decision.prefix == ()


def test_route_rejects_unanswerable_query():
    q = SliceQuery(("custkey",), ())
    with pytest.raises(QueryError):
        router().route(q, [ps_path()])


def test_clustered_access_beats_unclustered():
    """Same index keys; only the clustered one fetches sequentially."""
    q = SliceQuery(("suppkey", "partkey"), (("custkey", 3),))
    # Bound {custkey}: order (c, p, s) has a usable prefix; ~40 matches.
    clustered = psc_path(clustered=("custkey", "partkey", "suppkey"))
    unclustered = psc_path(clustered=("partkey", "suppkey", "custkey"))
    d_clustered = sf1_router().route(q, [clustered])
    d_unclustered = sf1_router().route(q, [unclustered])
    assert d_clustered.order == ("custkey", "partkey", "suppkey")
    assert d_unclustered.order == ("custkey", "partkey", "suppkey")
    assert d_clustered.est_cost < d_unclustered.est_cost


def test_unclustered_fetch_priced_as_random_pages():
    """~600 unclustered matches cost ~600 random pages — still cheaper
    than scanning 6M rows, but ~60x a clustered fetch of the same rows."""
    q = SliceQuery(("partkey", "custkey"), (("suppkey", 9),))
    unclustered = sf1_router().route(q, [psc_path()])
    assert unclustered.order == ("suppkey", "custkey", "partkey")
    clustered = sf1_router().route(
        q, [psc_path(clustered=("suppkey", "custkey", "partkey"))]
    )
    assert unclustered.est_cost > 30 * clustered.est_cost


def test_route_picks_longest_prefix_order():
    q = SliceQuery(("suppkey",), (("custkey", 3), ("partkey", 9)))
    decision = router().route(
        q, [psc_path(clustered=("custkey", "partkey", "suppkey"))]
    )
    assert decision.order == ("custkey", "partkey", "suppkey")
    assert decision.prefix == ("custkey", "partkey")


def test_route_exact_view_without_reaggregation_wins_ties():
    v_exact = ViewDefinition("V_c", ("custkey",))
    v_fine = ViewDefinition("V_sc", ("suppkey", "custkey"))
    exact = AccessPath(v_exact, 10.0, (("custkey",),),
                       clustered=("custkey",))
    fine = AccessPath(v_fine, 10.0, (("custkey", "suppkey"),),
                      clustered=("custkey", "suppkey"))
    q = SliceQuery((), (("custkey", 5),))
    decision = router().route(q, [fine, exact])
    assert decision.view_name == "V_c"
    assert not decision.needs_reaggregation


def test_route_with_hierarchy_attribute():
    lattice = CubeLattice(PSC, hierarchies={"brand": "partkey"})
    r = QueryRouter(lattice, dict(DISTINCT, brand=25.0))
    q = SliceQuery(("brand",), (("custkey", 1),))
    decision = r.route(
        q, [psc_path(clustered=("custkey", "partkey", "suppkey"))]
    )
    assert decision.view_name == "V_psc"
    assert decision.prefix == ("custkey",)


def test_decision_describe():
    q = SliceQuery(("suppkey",), (("partkey", 7),))
    decision = router().route(q, [psc_path()])
    assert "V_psc" in decision.describe()
    assert "ms" in decision.describe()


# ----------------------------------------------------------------------
# fast (packed-run) costing
# ----------------------------------------------------------------------
def run_path(size=6_000_000.0, run_leaves=None,
             clustered=("partkey", "suppkey", "custkey")):
    v_psc = ViewDefinition("V_psc", PSC)
    return AccessPath(
        v_psc, size, (clustered,), rows_per_page=120,
        clustered=clustered, run_leaves=run_leaves,
    )


def test_classic_router_never_emits_run_plans():
    q = SliceQuery(("suppkey",), (("partkey", 7),))
    plans = sf1_router().candidate_plans(run_path(run_leaves=50_000), q)
    assert all(not plan.use_run for plan in plans)


def test_fast_router_enumerates_both_physical_paths():
    q = SliceQuery(("suppkey",), (("partkey", 7),))
    plans = sf1_router().candidate_plans(
        run_path(run_leaves=50_000), q, fast_scans=True
    )
    assert any(plan.use_run for plan in plans)
    assert any(not plan.use_run for plan in plans)
    # The run alternatives price the same logical access differently;
    # route() then minimizes over all of them.


def test_fast_scan_of_small_run_beats_descent():
    """A few-leaf view: one seek + sequential run beats three random
    descent pages, so the fast plan wins and is marked use_run."""
    v_s = ViewDefinition("V_s", ("suppkey",))
    path = AccessPath(v_s, 600.0, (("suppkey",),), rows_per_page=200,
                      clustered=("suppkey",), run_leaves=3)
    q = SliceQuery(("suppkey",), ())
    decision = router().route(q, [path], fast_scans=True)
    assert decision.use_run
    assert decision.est_cost == 8.0 + 2 * 0.8


def test_fast_prefix_seek_loses_on_deep_runs():
    """A big run needs ~log2(leaves) random probes to seek; the 3-page
    interior descent stays cheaper, so classic execution is kept."""
    q = SliceQuery(("suppkey", "custkey"), (("partkey", 7),))
    decision = sf1_router().route(
        q, [run_path(run_leaves=50_000)], fast_scans=True
    )
    assert decision.order is not None
    assert not decision.use_run  # ceil(log2(50000)) = 16 probes > descent


def test_exact_cost_tie_keeps_classic_execution():
    """When the run seek prices exactly like the descent, the classic
    plan (enumerated first) must win — zero drift on ties."""
    v_s = ViewDefinition("V_s", ("suppkey",))
    # 8 leaves: ceil(log2(8)) = 3 probes == _DESCENT_PAGES.
    path = AccessPath(v_s, 1600.0, (("suppkey",),), rows_per_page=200,
                      clustered=("suppkey",), run_leaves=8)
    q = SliceQuery((), (("suppkey", 7),))
    plans = router().candidate_plans(path, q, fast_scans=True)
    ordered = [p for p in plans if p.order is not None]
    assert len(ordered) == 2
    assert ordered[0].est_cost == ordered[1].est_cost
    decision = router().route(q, [path], fast_scans=True)
    if decision.order is not None:
        assert not decision.use_run


def test_route_fast_scans_override_beats_constructor_default():
    fast_router = QueryRouter(
        CubeLattice(PSC), PSC_DISTINCT_SF1, fast_scans=True
    )
    v_s = ViewDefinition("V_s", ("suppkey",))
    path = AccessPath(v_s, 600.0, (("suppkey",),), rows_per_page=200,
                      clustered=("suppkey",), run_leaves=3)
    q = SliceQuery(("suppkey",), ())
    assert fast_router.route(q, [path]).use_run
    assert not fast_router.route(q, [path], fast_scans=False).use_run
    classic = router()
    assert classic.route(q, [path], fast_scans=True).use_run


def test_decision_describe_marks_run_plans():
    v_s = ViewDefinition("V_s", ("suppkey",))
    path = AccessPath(v_s, 600.0, (("suppkey",),), rows_per_page=200,
                      clustered=("suppkey",), run_leaves=3)
    q = SliceQuery(("suppkey",), ())
    decision = router().route(q, [path], fast_scans=True)
    assert "[run]" in decision.describe()
    assert "[run]" not in router().route(q, [path]).describe()


# ----------------------------------------------------------------------
# property: route() == brute-force minimum over every candidate plan
# ----------------------------------------------------------------------
try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    HAVE_HYPOTHESIS = False

if HAVE_HYPOTHESIS:

    @st.composite
    def routed_cases(draw):
        """Random paths (sizes, orders, run extents) + a random query."""
        attrs = PSC
        paths = []
        n_paths = draw(st.integers(min_value=1, max_value=4))
        for i in range(n_paths):
            n_attrs = draw(st.integers(min_value=0, max_value=3))
            group_by = tuple(draw(st.permutations(attrs)))[:n_attrs]
            size = draw(st.floats(min_value=1.0, max_value=1e7))
            clustered = tuple(reversed(group_by)) or None
            orders = (clustered,) if clustered else ()
            run_leaves = draw(
                st.one_of(st.none(), st.integers(min_value=1, max_value=60_000))
            )
            paths.append(
                AccessPath(
                    ViewDefinition(f"V_{i}_{'_'.join(group_by)}", group_by),
                    size, orders, rows_per_page=120,
                    clustered=clustered, run_leaves=run_leaves,
                )
            )
        node = tuple(
            draw(st.permutations(attrs))
        )[: draw(st.integers(min_value=0, max_value=3))]
        bound = draw(
            st.lists(st.sampled_from(attrs), unique=True, max_size=2)
            if attrs else st.just([])
        )
        bindings = []
        ranges = []
        for attr in bound:
            if attr in node:
                continue
            if draw(st.booleans()):
                bindings.append((attr, draw(st.integers(1, 100))))
            else:
                low = draw(st.integers(1, 100))
                ranges.append((attr, low, draw(st.integers(low, 200))))
        query = SliceQuery(tuple(node), tuple(bindings), tuple(ranges))
        fast = draw(st.booleans())
        return paths, query, fast

    @given(routed_cases())
    @settings(max_examples=150, deadline=None)
    def test_route_matches_brute_force_minimum(case):
        """route() returns exactly the cheapest plan any derivable path
        offers — the enumeration candidate_plans exposes."""
        paths, query, fast = case
        r = sf1_router()
        node = tuple(query.node)
        derivable = [
            p for p in paths
            if r.lattice.derives_from(node, p.view.group_by)
        ]
        all_plans = [
            plan
            for path in derivable
            for plan in r.candidate_plans(path, query, fast_scans=fast)
        ]
        if not all_plans:
            with pytest.raises(QueryError):
                r.route(query, paths, fast_scans=fast)
            return
        decision = r.route(query, paths, fast_scans=fast)
        best = min(plan.est_cost for plan in all_plans)
        assert decision.est_cost == best
        if not fast:
            assert not decision.use_run
