"""Tests for slice queries."""

import pytest

from repro.errors import QueryError
from repro.query.slice import SliceQuery


def test_node_is_union():
    q = SliceQuery(("partkey",), (("custkey", 5),))
    assert q.node == frozenset(("partkey", "custkey"))
    assert q.bound_attrs == ("custkey",)
    assert q.binding_map == {"custkey": 5}


def test_empty_query_is_super_aggregate():
    q = SliceQuery((), ())
    assert q.node == frozenset()


def test_overlapping_attrs_rejected():
    with pytest.raises(QueryError):
        SliceQuery(("partkey",), (("partkey", 1),))


def test_duplicate_bindings_rejected():
    with pytest.raises(QueryError):
        SliceQuery((), (("a", 1), ("a", 2)))


def test_duplicate_group_by_rejected():
    with pytest.raises(QueryError):
        SliceQuery(("a", "a"), ())


def test_describe():
    q = SliceQuery(("partkey",), (("custkey", 5),))
    assert q.describe() == (
        "select partkey, sum(quantity) from F where custkey = 5 "
        "group by partkey"
    )
    assert SliceQuery((), ()).describe() == "select sum(quantity) from F"


def test_describe_renders_real_aggregates_and_measure():
    from repro.relational.executor import AggFunc, AggSpec

    q = SliceQuery(("partkey",), (("custkey", 5),))
    specs = (AggSpec(AggFunc.AVG, "price"), AggSpec(AggFunc.COUNT))
    assert q.describe(aggregates=specs) == (
        "select partkey, avg(price), count(*) from F where custkey = 5 "
        "group by partkey"
    )
    # A schema with a different measure no longer gets the lie
    # ``sum(quantity)`` in its logs.
    assert SliceQuery((), ()).describe(measure="extendedprice") == (
        "select sum(extendedprice) from F"
    )
