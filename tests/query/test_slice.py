"""Tests for slice queries."""

import pytest

from repro.errors import QueryError
from repro.query.slice import SliceQuery


def test_node_is_union():
    q = SliceQuery(("partkey",), (("custkey", 5),))
    assert q.node == frozenset(("partkey", "custkey"))
    assert q.bound_attrs == ("custkey",)
    assert q.binding_map == {"custkey": 5}


def test_empty_query_is_super_aggregate():
    q = SliceQuery((), ())
    assert q.node == frozenset()


def test_overlapping_attrs_rejected():
    with pytest.raises(QueryError):
        SliceQuery(("partkey",), (("partkey", 1),))


def test_duplicate_bindings_rejected():
    with pytest.raises(QueryError):
        SliceQuery((), (("a", 1), ("a", 2)))


def test_duplicate_group_by_rejected():
    with pytest.raises(QueryError):
        SliceQuery(("a", "a"), ())


def test_describe():
    q = SliceQuery(("partkey",), (("custkey", 5),))
    assert q.describe() == (
        "select partkey, sum(quantity) from F where custkey = 5 "
        "group by partkey"
    )
    assert SliceQuery((), ()).describe() == "select sum(quantity) from F"
