"""Tests for batched multi-query execution (shared leaf-run passes).

The load-bearing property is byte-identity: for ANY warehouse, view
subset, and query batch, ``engine.query_batch(queries)`` returns for each
query exactly the rows that serial ``engine.query(query)`` returns —
whether the batch answered it through a shared run pass or through the
per-query fallback, and whether serial execution planned classic or fast.
The hypothesis sweep proves it over random cases; the unit tests pin the
grouping, replica merging, and cost-gate mechanics.
"""

import os

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.engine import CubetreeEngine
from repro.query.batch import (
    _merge_replica_groups,
    _shared_pass_cheaper,
    execute_batch,
    route_batch,
)
from repro.query.router import (
    _DESCENT_PAGES,
    AccessPath,
    QueryRouter,
    RoutingDecision,
)
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator

from tests.test_differential import (
    _make_schema,
    slice_queries,
    view_subsets,
    warehouses,
)

EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "200"))


@st.composite
def batch_cases(draw):
    """A warehouse, a view subset, and a batch of 1-8 slice queries."""
    domain_sizes, facts = draw(warehouses())
    views = draw(view_subsets(tuple(domain_sizes)))
    queries = draw(
        st.lists(slice_queries(domain_sizes), min_size=1, max_size=8)
    )
    return domain_sizes, facts, views, queries


@given(batch_cases())
@settings(max_examples=EXAMPLES, deadline=None)
def test_batched_answers_are_identical_to_serial(case):
    """query_batch == one-at-a-time query, classic and fast, always."""
    domain_sizes, facts, views, queries = case
    schema = _make_schema(domain_sizes)
    engine = CubetreeEngine(schema, buffer_pages=64)
    engine.materialize(views, facts)

    batch = engine.query_batch(queries)
    assert len(batch) == len(queries)
    for query, result in zip(queries, batch.results):
        serial = engine.query(query, fast=False).rows
        assert result.rows == serial, query.describe()
        assert engine.query(query, fast=True).rows == serial, query.describe()


def _engine(scale=0.001, seed=42, replicate=None):
    data = TPCDGenerator(scale_factor=scale, seed=seed).generate()
    engine = CubetreeEngine(data.schema, buffer_pages=256)
    views = [
        ViewDefinition("V_psc", ("partkey", "suppkey", "custkey")),
        ViewDefinition("V_ps", ("partkey", "suppkey")),
        ViewDefinition("V_s", ("suppkey",)),
        ViewDefinition("V_none", ()),
    ]
    engine.materialize(views, data.facts, replicate=replicate)
    return engine


def test_batch_result_carries_totals_and_plans():
    engine = _engine()
    queries = [
        SliceQuery(("partkey",), (("suppkey", s),)) for s in range(1, 9)
    ]
    engine.pool.clear()  # cold cache, so the batch pays real (simulated) I/O
    batch = engine.query_batch(queries)
    assert len(batch) == len(queries)
    assert batch.io.total_ios > 0
    assert batch.wall_ms > 0.0
    assert batch.groups >= 1
    for result in batch.results:
        assert "V_" in result.plan


def test_empty_batch():
    engine = _engine()
    batch = engine.query_batch([])
    assert len(batch) == 0
    assert batch.groups == 0
    assert batch.batched == 0


def test_unbound_node_queries_share_one_pass():
    """Whole-node queries over the same view are the shared-pass sweet
    spot: the group runs as one pass and every plan says so."""
    engine = _engine()
    queries = [SliceQuery(("partkey", "suppkey"), ())] * 6
    batch = engine.query_batch(queries)
    assert batch.batched == len(queries)
    assert all("[batched]" in r.plan for r in batch.results)
    serial = engine.query(queries[0], fast=False).rows
    assert all(r.rows == serial for r in batch.results)


def test_lone_selective_query_falls_back_to_its_own_plan():
    """One highly selective query is cheaper through its own descent
    than dragging a whole run scan; the gate must not share it."""
    engine = _engine()
    queries = [SliceQuery(("partkey",), (("custkey", 3), ("suppkey", 2)))]
    batch = engine.query_batch(queries)
    assert batch.batched == 0
    assert "[batched]" not in batch.results[0].plan
    assert batch.results[0].rows == engine.query(queries[0]).rows


def test_replica_views_are_answered_identically():
    """A batch over a replicated view set returns serial answers no
    matter which replica each query was routed to."""
    engine = _engine(replicate={"V_ps": [("suppkey", "partkey")]})
    queries = [
        SliceQuery(("partkey",), (("suppkey", s),)) for s in range(1, 5)
    ] + [
        SliceQuery(("suppkey",), (("partkey", p),)) for p in range(1, 5)
    ] + [SliceQuery(("partkey", "suppkey"), ())]
    batch = engine.query_batch(queries)
    for query, result in zip(queries, batch.results):
        assert result.rows == engine.query(query).rows


def test_merge_replica_groups_unites_sort_order_replicas():
    """Views with the same group-by set land in one replica class;
    views over different sets stay apart."""
    v_ps = ViewDefinition("V_ps", ("partkey", "suppkey"))
    v_sp = ViewDefinition("V_ps_sp", ("suppkey", "partkey"))
    v_s = ViewDefinition("V_s", ("suppkey",))
    decisions = [
        _decision(v_ps, 10.0), _decision(v_sp, 10.0), _decision(v_s, 10.0)
    ]
    groups = {"V_ps": [0], "V_ps_sp": [1], "V_s": [2]}
    merged = _merge_replica_groups(decisions, groups)
    assert sorted(map(sorted, merged)) == [
        ["V_ps", "V_ps_sp"], ["V_s"]
    ]


# ----------------------------------------------------------------------
# the cost gate, in isolation
# ----------------------------------------------------------------------
def _decision(view, est_cost, order=None, use_run=False, run_leaves=40):
    path = AccessPath(view, 1000.0, (), run_leaves=run_leaves)
    return RoutingDecision(
        path, order, (), est_cost, False, use_run=use_run
    )


def _gate_router():
    from repro.cube.lattice import CubeLattice

    return QueryRouter(
        CubeLattice(("a", "b")), {"a": 10.0, "b": 10.0},
        random_ms=8.0, sequential_ms=0.8,
    )


def test_gate_rejects_path_without_run():
    view = ViewDefinition("V_a", ("a",))
    path = AccessPath(view, 1000.0, (), run_leaves=None)
    group = [_decision(view, 1000.0)]
    assert not _shared_pass_cheaper(_gate_router(), path, group)


def test_gate_shares_when_many_descents_outweigh_one_scan():
    view = ViewDefinition("V_a", ("a",))
    path = AccessPath(view, 1000.0, (), run_leaves=10)
    # 10-leaf run: seek ~4 probes * 8 + 8 + 9*0.8 ~ 47 ms shared.
    group = [
        _decision(view, 32.0, order=("a",), run_leaves=10)
        for _ in range(20)
    ]
    assert _shared_pass_cheaper(_gate_router(), path, group)


def test_gate_declines_when_group_is_cheap():
    view = ViewDefinition("V_a", ("a",))
    path = AccessPath(view, 1000.0, (), run_leaves=500)
    group = [_decision(view, 10.0, order=("a",), run_leaves=500)]
    assert not _shared_pass_cheaper(_gate_router(), path, group)


def test_gate_serial_estimate_discounts_repeat_descents():
    """Only the first descent into a view pays the interior pages, so a
    group of N identical descents is priced N*cost - (N-1)*descent."""
    router = _gate_router()
    view = ViewDefinition("V_a", ("a",))
    per_query = 4.0 + _DESCENT_PAGES * router.random_ms  # 28 ms each
    # 60-leaf shared pass: 6 probes * 8 + 8 + 59*0.8 = 103.2 ms.
    # Naive serial estimate of 5 queries = 140 ms (would share);
    # caching-aware = 28 + 4*4 = 44 ms (must not share).
    path = AccessPath(view, 1000.0, (), run_leaves=60)
    group = [
        _decision(view, per_query, order=("a",), run_leaves=60)
        for _ in range(5)
    ]
    assert not _shared_pass_cheaper(router, path, group)
    # The same five plans priced as true run accesses (no descent to
    # share) keep their full cost and still lose to the shared pass at
    # a high enough count.
    run_group = [
        _decision(view, per_query, order=("a",), use_run=True,
                  run_leaves=60)
        for _ in range(5)
    ]
    assert _shared_pass_cheaper(router, path, run_group)


def test_execute_batch_groups_by_routed_view():
    engine = _engine()
    queries = [
        SliceQuery(("partkey", "suppkey"), ()),
        SliceQuery(("suppkey",), ()),
        SliceQuery(("partkey", "suppkey"), ()),
    ]
    decisions, groups = route_batch(
        engine.router, engine.forest.access_paths(), queries
    )
    assert groups["V_ps"] == [0, 2]
    assert groups["V_s"] == [1]
    batch = execute_batch(
        engine.router, engine.forest, engine.hierarchies, queries
    )
    for query, result in zip(queries, batch.results):
        assert result.rows == engine.query(query).rows
