"""Reusable concurrency-test kit for the serving layer.

Three pieces every server test composes:

* :class:`ReferenceOracle` — a differential oracle: a private
  single-threaded engine replays the same initial load and the same
  increments the server publishes, capturing the exact expected answers
  *per generation*.  Because the server's refresh builder runs the same
  ``update`` + checkpoint code path, a served answer is correct iff it
  equals the oracle's answer for the generation it was served from.
* :class:`ClientPool` — N client threads hammering ``server.query``
  from a barrier start, each recording ``(query_index, generation,
  rows)`` observations and errors.
* :class:`RefreshInjector` — a barrier-controlled refresh driver, so a
  test can hold refresh until clients are provably mid-flight.
* :func:`check_snapshots` — the snapshot checker: every observation must
  equal the oracle's answer for *some single published generation* —
  i.e. exactly the pre- or post-refresh snapshot, never a mix of rows
  from two generations.

The kit builds tiny databases (a few hundred facts) so whole matrices of
interleavings stay fast.
"""

import threading
import time

from repro.core.engine import CubetreeEngine
from repro.core.persistence import save_engine
from repro.query.generator import RandomQueryGenerator
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator

#: A small view set with one replica — enough to route every node the
#: reference workload touches.
KIT_VIEWS = [
    ViewDefinition("V_psc", ("partkey", "suppkey", "custkey")),
    ViewDefinition("V_ps", ("partkey", "suppkey")),
    ViewDefinition("V_p", ("partkey",)),
    ViewDefinition("V_s", ("suppkey",)),
    ViewDefinition("V_none", ()),
]
KIT_REPLICATE = {"V_psc": [("custkey", "partkey", "suppkey")]}
KIT_NODES = (
    ("partkey", "suppkey"),
    ("partkey",),
    ("suppkey",),
    (),
)


def build_database(directory, scale=0.0004, seed=31, retain=2):
    """Materialize the kit warehouse and commit it as generation 1.

    Returns ``(generator, data)`` so tests can draw increments from the
    same deterministic stream the database was built from.
    """
    generator = TPCDGenerator(scale_factor=scale, seed=seed)
    data = generator.generate()
    engine = CubetreeEngine(data.schema, buffer_pages=128)
    engine.materialize(KIT_VIEWS, data.facts, replicate=KIT_REPLICATE)
    save_engine(engine, str(directory), retain=retain)
    return generator, data


def reference_queries(schema, per_node=2, seed=7):
    """The deterministic slice-query workload every kit test reuses."""
    qgen = RandomQueryGenerator(schema, seed=seed)
    return [
        query
        for node in KIT_NODES
        for query in qgen.generate_for_node(
            node, per_node, include_unbound=True
        )
    ]


class ReferenceOracle:
    """Expected answers per generation, from an independent replay engine.

    ``advance(generation, delta)`` merge-packs ``delta`` into the replay
    engine and snapshots the answers that generation must serve;
    ``expect(generation, query_index)`` returns them.  The oracle engine
    is private to the test thread — never the server's.
    """

    def __init__(self, data, queries, first_generation=1):
        self.queries = list(queries)
        self._engine = CubetreeEngine(data.schema, buffer_pages=128)
        self._engine.materialize(
            KIT_VIEWS, data.facts, replicate=KIT_REPLICATE
        )
        self._lock = threading.Lock()
        self._answers = {first_generation: self._snapshot()}

    def _snapshot(self):
        return [self._engine.query(q).rows for q in self.queries]

    def advance(self, generation, delta):
        """Apply one published increment; record that generation's truth."""
        with self._lock:
            if generation in self._answers:
                raise AssertionError(
                    f"generation {generation} advanced twice"
                )
            if delta:
                self._engine.update(list(delta))
            self._answers[generation] = self._snapshot()

    def known_generations(self):
        with self._lock:
            return sorted(self._answers)

    def expect(self, generation, query_index):
        """The rows generation ``generation`` must return for a query."""
        with self._lock:
            return self._answers[generation][query_index]


class Observation:
    """One served answer, as seen by a client thread."""

    __slots__ = ("query_index", "generation", "rows", "client")

    def __init__(self, query_index, generation, rows, client):
        self.query_index = query_index
        self.generation = generation
        self.rows = rows
        self.client = client


class ClientPool:
    """N threads replaying a query workload against a server.

    ``run(rounds)`` starts every client on a shared barrier, waits for
    all of them, and returns ``(observations, errors)``.  Clients cycle
    through the workload at different offsets so concurrent arrivals mix
    query shapes (exercising per-round coalescing).
    """

    def __init__(self, server, queries, threads=4, extra_parties=0):
        self.server = server
        self.queries = list(queries)
        self.threads = threads
        self.observations = []
        self.errors = []
        self._lock = threading.Lock()
        #: ``extra_parties`` counts additional actors (e.g. a
        #: RefreshInjector) that join the same start line.
        self.barrier = threading.Barrier(threads + 1 + extra_parties)

    #: Hard cap on workload passes when running until an event (a stuck
    #: refresher must not spin clients forever).
    MAX_ROUNDS = 200

    def _client(self, barrier, client_index, rounds, until):
        local_obs, local_err = [], []
        barrier.wait()
        completed = 0
        while True:
            for step in range(len(self.queries)):
                index = (client_index + step) % len(self.queries)
                try:
                    served = self.server.query(self.queries[index])
                except Exception as exc:  # noqa: BLE001 - tallied
                    local_err.append(exc)
                    continue
                local_obs.append(
                    Observation(
                        index, served.generation, served.rows, client_index
                    )
                )
            completed += 1
            if completed >= rounds and (until is None or until.is_set()):
                break
            if completed >= self.MAX_ROUNDS:
                break
        with self._lock:
            self.observations.extend(local_obs)
            self.errors.extend(local_err)

    def run(self, rounds=1, until=None):
        """Run all clients to completion; returns (observations, errors).

        With ``until`` (an Event), clients keep replaying the workload
        past ``rounds`` until the event is set — how tests guarantee the
        load genuinely overlaps a slower concurrent actor.
        """
        workers = [
            threading.Thread(
                target=self._client,
                args=(self.barrier, i, rounds, until),
                daemon=True,
            )
            for i in range(self.threads)
        ]
        for worker in workers:
            worker.start()
        self.barrier.wait()
        for worker in workers:
            worker.join(timeout=120.0)
        alive = [w for w in workers if w.is_alive()]
        assert not alive, f"{len(alive)} client thread(s) hung"
        return self.observations, self.errors


class RefreshInjector:
    """Drives refresh cycles from its own thread, barrier-aligned.

    ``inject(pool, deltas, oracle)`` registers with the pool's start
    barrier, then runs one submit+refresh cycle per delta while the
    clients are mid-flight, advancing the oracle on every publish.
    Outcomes land in ``self.outcomes``.
    """

    def __init__(self, server, pause=0.01):
        self.server = server
        self.pause = pause
        self.outcomes = []
        self.thread = None
        #: Set once every refresh cycle has run (pass as ``until=`` to
        #: :meth:`ClientPool.run` to guarantee overlap).
        self.done = threading.Event()

    def attach(self, pool, deltas, oracle):
        """Join ``pool``'s start barrier; the pool must have been built
        with ``extra_parties`` counting this injector."""

        def runner():
            pool.barrier.wait()
            try:
                for delta in deltas:
                    time.sleep(self.pause)
                    self.server.submit_delta(delta)
                    outcome = self.server.refresh_now()
                    self.outcomes.append(outcome)
                    if outcome.status == "published":
                        oracle.advance(outcome.generation, delta)
            finally:
                self.done.set()

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        return self

    def join(self):
        self.thread.join(timeout=120.0)
        assert not self.thread.is_alive(), "refresh injector hung"
        return self.outcomes


def check_snapshots(observations, oracle):
    """The snapshot checker.

    Every observation must carry a generation the oracle knows and match
    that generation's answer *exactly* — equal to the pre-refresh or the
    post-refresh snapshot, never a blend.  Returns the set of
    generations actually observed (tests usually also assert > 1 of
    them showed up under refresh load).
    """
    known = set(oracle.known_generations())
    seen = set()
    for obs in observations:
        assert obs.generation in known, (
            f"client {obs.client} saw unpublished generation "
            f"{obs.generation}"
        )
        expected = oracle.expect(obs.generation, obs.query_index)
        assert obs.rows == expected, (
            f"client {obs.client} query {obs.query_index}: rows do not "
            f"match generation {obs.generation}'s snapshot (a torn read "
            f"across a refresh?)"
        )
        seen.add(obs.generation)
    return seen
