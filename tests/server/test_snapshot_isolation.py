"""Snapshot isolation under refresh: the tentpole's proof obligations.

Two attacks on the same invariant:

* a *concurrent* harness test — real client threads, a barrier-aligned
  refresh injector, and the differential oracle — asserting every
  response equals the pre- or post-refresh snapshot of the generation it
  was tagged with, never a mix;
* a Hypothesis *stateful machine* interleaving queries, pins, delta
  submission, refresh/publish, and release/prune in one thread,
  asserting pin-count balance, that no pinned generation's files are
  ever deleted, that generations only move forward, and that a pinned
  old snapshot keeps answering exactly what it answered at publish time.
"""

import collections
import os
import shutil
import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.persistence import list_generations
from repro.server import CubetreeServer, ServerConfig

from tests.server.kit import (
    ClientPool,
    ReferenceOracle,
    RefreshInjector,
    build_database,
    check_snapshots,
    reference_queries,
)


def test_concurrent_clients_never_see_torn_snapshots(tmp_path):
    """Clients hammer the server while two refreshes publish mid-flight.

    The differential oracle replays the same increments on a private
    engine; every client observation must match the oracle's answer for
    the generation the response was tagged with.  Both the pre- and the
    post-refresh generation must actually appear in the observations
    (the refresh really did overlap the load), with zero errors.
    """
    directory = str(tmp_path / "db")
    generator, data = build_database(directory)
    queries = reference_queries(data.schema)
    oracle = ReferenceOracle(data, queries)
    server = CubetreeServer(directory, ServerConfig(retain=2)).start()
    try:
        pool = ClientPool(server, queries, threads=4, extra_parties=1)
        deltas = [
            generator.generate_increment(0.15, stream=f"iso-{i}")
            for i in range(2)
        ]
        injector = RefreshInjector(server, pause=0.02).attach(
            pool, deltas, oracle
        )
        # Clients keep cycling until both refreshes have published, so
        # the load provably spans the generation changes.
        observations, errors = pool.run(rounds=3, until=injector.done)
        outcomes = injector.join()

        assert errors == []
        assert [o.status for o in outcomes] == ["published", "published"]
        seen = check_snapshots(observations, oracle)
        assert len(seen) >= 2, (
            f"refresh never overlapped the client load (saw only "
            f"generations {sorted(seen)}); widen the workload"
        )
        # Pins are balanced once the dust settles; nothing leaks.
        assert all(
            count == 0 for count in server.manager.pin_counts().values()
        )
    finally:
        server.close()


class ServerMachine(RuleBasedStateMachine):
    """Single-threaded interleavings of every serving-layer operation.

    Correctness of *answers* is part A's differential job; this machine
    chases lifecycle bugs — pin accounting, premature prunes, stale
    engines after publish — through operation orders no unit test lists
    by hand.  The per-generation truth is recorded at publish time, so a
    pinned generation answering anything different later means its
    snapshot was disturbed.
    """

    def __init__(self):
        super().__init__()
        self.scratch = tempfile.mkdtemp(prefix="server-machine-")
        self.server = None

    @initialize()
    def setup(self):
        directory = os.path.join(self.scratch, "db")
        self.generator, data = build_database(
            directory, scale=0.0002, seed=53
        )
        self.queries = reference_queries(data.schema, per_node=1)
        self.server = CubetreeServer(
            directory, ServerConfig(retain=1)
        ).start()
        self.held = []
        self.stream = 0
        self.pending_batches = []  # mirrors server's unpublished deltas
        self.expected = {}
        self._record_truth(self.server.manager.current_number)

    def _record_truth(self, generation):
        handle = self.server.manager.acquire()
        try:
            assert handle.number == generation
            self.expected[generation] = [
                handle.engine.query(q).rows for q in self.queries
            ]
        finally:
            self.server.manager.release(handle)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(index=st.integers(0, 7))
    def query(self, index):
        index %= len(self.queries)
        served = self.server.query(self.queries[index])
        assert served.rows == self.expected[served.generation][index]

    @rule()
    def pin(self):
        if len(self.held) < 4:
            self.held.append(self.server.manager.acquire())

    @rule(which=st.integers(0, 3))
    def unpin(self, which):
        if self.held:
            self.server.manager.release(
                self.held.pop(which % len(self.held))
            )

    @rule(index=st.integers(0, 7))
    def query_pinned(self, index):
        """A pinned old generation still answers its publish-time truth."""
        if not self.held:
            return
        handle = self.held[0]
        index %= len(self.queries)
        rows = handle.engine.query(self.queries[index]).rows
        assert rows == self.expected[handle.number][index], (
            f"pinned generation {handle.number} drifted from its "
            f"publish-time snapshot"
        )

    @rule(fraction=st.sampled_from([0.05, 0.1, 0.2]))
    def submit(self, fraction):
        rows = self.generator.generate_increment(
            fraction, stream=f"machine-{self.stream}"
        )
        self.stream += 1
        self.server.submit_delta(rows)
        self.pending_batches.append(rows)

    @rule()
    def refresh(self):
        before = self.server.manager.current_number
        outcome = self.server.refresh_now()
        if not self.pending_batches:
            assert outcome.status == "idle"
            return
        assert outcome.status == "published"
        assert outcome.generation > before, "generations must move forward"
        assert outcome.rows_applied == sum(
            len(b) for b in self.pending_batches
        )
        self.pending_batches = []
        assert self.server.pending_delta_rows == 0
        self._record_truth(outcome.generation)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def pins_balance(self):
        if self.server is None:
            return
        want = collections.Counter(h.number for h in self.held)
        got = {
            number: pins
            for number, pins in self.server.manager.pin_counts().items()
            if pins > 0
        }
        assert got == dict(want), f"pin ledger drifted: {got} != {want}"

    @invariant()
    def pinned_files_survive(self):
        if self.server is None:
            return
        on_disk = {
            number
            for number, _path, committed in list_generations(
                self.server.directory
            )
            if committed
        }
        for handle in self.held:
            assert handle.number in on_disk, (
                f"generation {handle.number} pruned while pinned"
            )
            assert os.path.exists(
                os.path.join(handle.path, "MANIFEST.json")
            )

    @invariant()
    def current_is_committed_and_newest_known(self):
        if self.server is None:
            return
        current = self.server.manager.current_number
        assert current == max(self.expected)

    def teardown(self):
        if self.server is not None:
            for handle in self.held:
                self.server.manager.release(handle)
            self.server.close()
        shutil.rmtree(self.scratch, ignore_errors=True)


TestServerMachine = ServerMachine.TestCase
TestServerMachine.settings = settings(
    max_examples=8, stateful_step_count=15, deadline=None
)
