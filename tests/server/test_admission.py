"""Admission-queue behaviour: coalescing, bounding, error relay, shutdown.

Coalesced answers must be bit-identical to serial ones (PR 5's
``query_batch`` invariant carries through the executor), rejection must
kick in exactly at ``max_depth``, and engine errors must reach the
waiter that asked — not the executor's stderr.
"""

import threading

import pytest

from repro.server import AdmissionError, AdmissionQueue

from tests.server.kit import reference_queries


@pytest.fixture()
def pinned(server):
    handle = server.manager.acquire()
    yield handle
    server.manager.release(handle)


class TestExecution:
    def test_single_query_matches_serial(self, server, pinned, workload):
        queue = server.admission
        for query in workload[:4]:
            got = queue.submit(pinned, query, timeout=30.0)
            assert got.rows == pinned.engine.query(query).rows

    def test_concurrent_queries_coalesce_and_match_serial(
        self, server, pinned, workload
    ):
        """Pile a burst onto the queue from many threads at once; every
        answer must equal the serial answer, and at least one executor
        round must have batched (the coalescing counter moves)."""
        from repro.obs import get_registry

        queue = server.admission
        coalesced = get_registry().counter("server.queries_coalesced")
        before = coalesced.value
        expected = [pinned.engine.query(q).rows for q in workload]
        results = [None] * len(workload)
        errors = []
        barrier = threading.Barrier(len(workload))

        def client(index):
            barrier.wait()
            try:
                results[index] = queue.submit(
                    pinned, workload[index], timeout=30.0
                ).rows
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(len(workload))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert results == expected
        assert coalesced.value > before, "burst never coalesced"

    def test_engine_error_reaches_the_waiter(self, server, pinned):
        from repro.query.slice import SliceQuery

        bogus = SliceQuery(group_by=("nonexistent_attr",))
        with pytest.raises(Exception, match="nonexistent_attr"):
            server.admission.submit(pinned, bogus, timeout=30.0)
        # The executor survives a poisoned query.
        query = reference_queries(server.schema, per_node=1)[0]
        assert server.admission.submit(pinned, query, timeout=30.0).rows


class TestBounds:
    def test_rejects_past_max_depth(self, server, pinned, workload):
        queue = AdmissionQueue(max_depth=2)
        # Not started: enqueue alone must fail cleanly too.
        with pytest.raises(AdmissionError, match="not running"):
            queue.submit_nowait(pinned, workload[0])
        queue.start()
        try:
            # Overfill synchronously while holding the executor's lock
            # so it cannot drain between the stuffing and the assert.
            from repro.server.admission import _Pending

            with queue._lock:
                queue._pending.extend(
                    _Pending(pinned, workload[0]) for _ in range(2)
                )
            with pytest.raises(AdmissionError, match="full"):
                queue.submit_nowait(pinned, workload[0])
        finally:
            queue.close()

    def test_max_depth_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)

    def test_close_fails_waiters(self, server, pinned, workload):
        queue = AdmissionQueue(max_depth=8)
        queue.start()
        release = threading.Event()
        outcome = {}

        class SlowHandle:
            number = pinned.number

            class engine:  # noqa: N801 - stub namespace
                @staticmethod
                def query(_q):
                    release.wait(30.0)
                    return pinned.engine.query(workload[0])

        def waiter():
            try:
                queue.submit(SlowHandle(), workload[1], timeout=30.0)
            except AdmissionError as exc:
                outcome["error"] = exc

        # First submission occupies the executor; the second sits in the
        # queue and must be failed by close().
        blocker = threading.Thread(
            target=lambda: queue.submit(SlowHandle(), workload[0], 30.0),
            daemon=True,
        )
        blocker.start()
        import time

        time.sleep(0.05)
        pending = threading.Thread(target=waiter, daemon=True)
        pending.start()
        time.sleep(0.05)
        # Unblock the in-flight query shortly after close() starts so
        # its executor join returns promptly.
        threading.Timer(0.1, release.set).start()
        queue.close()
        pending.join(timeout=30.0)
        blocker.join(timeout=30.0)
        assert "error" in outcome
        assert "shutting down" in str(outcome["error"])

    def test_peak_depth_is_tracked(self, server, pinned, workload):
        queue = server.admission
        queue.submit(pinned, workload[0], timeout=30.0)
        assert queue.peak_depth >= 1
        assert queue.peak_depth <= server.config.max_admission_depth
