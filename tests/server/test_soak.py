"""Sustained concurrent load with continuous refresh (the soak).

The short variant always runs in CI: a few seconds of real threads and
two publishes.  The full soak — ``REPRO_SOAK=1`` — runs more clients
through many refresh cycles for long enough to surface leaks the short
run cannot (pin-ledger drift, admission-queue growth, generation
runaway).  Both assert the same contract:

* zero client errors;
* every observation matches its generation's oracle snapshot;
* per-client generation sequences are monotonic (time never runs
  backwards for a single client);
* admission depth stays bounded and pins balance out to zero.
"""

import os

import pytest

from repro.server import CubetreeServer, ServerConfig

from tests.server.kit import (
    ClientPool,
    ReferenceOracle,
    RefreshInjector,
    build_database,
    check_snapshots,
    reference_queries,
)

SOAK = os.environ.get("REPRO_SOAK") == "1"


def _soak(tmp_path, threads, refreshes, pause, rounds):
    directory = str(tmp_path / "db")
    generator, data = build_database(directory)
    queries = reference_queries(data.schema)
    oracle = ReferenceOracle(data, queries)
    server = CubetreeServer(directory, ServerConfig(retain=2)).start()
    try:
        pool = ClientPool(server, queries, threads=threads, extra_parties=1)
        deltas = [
            generator.generate_increment(0.05, stream=f"soak-{i}")
            for i in range(refreshes)
        ]
        injector = RefreshInjector(server, pause=pause).attach(
            pool, deltas, oracle
        )
        observations, errors = pool.run(rounds=rounds, until=injector.done)
        outcomes = injector.join()

        # Zero errors, every refresh published, generations ran forward.
        assert errors == []
        statuses = [o.status for o in outcomes]
        assert statuses == ["published"] * refreshes, statuses
        published = [o.generation for o in outcomes]
        assert published == sorted(published)
        assert len(set(published)) == refreshes

        # Every answer is a clean snapshot of its tagged generation.
        seen = check_snapshots(observations, oracle)
        assert len(seen) >= 2, f"load never spanned a refresh: {seen}"

        # Per-client monotonicity: a client can see an old generation
        # right after a publish (its pin predates it) but never travel
        # backwards.
        for client in range(threads):
            gens = [
                o.generation for o in observations if o.client == client
            ]
            assert gens == sorted(gens), f"client {client} went backwards"

        # Bounded admission, balanced pins, nothing left in flight.
        assert server.admission.peak_depth <= (
            server.config.max_admission_depth
        )
        assert server.admission.depth == 0
        assert all(
            pins == 0 for pins in server.manager.pin_counts().values()
        )
        assert server.pending_delta_rows == 0
        return len(observations)
    finally:
        server.close()


def test_soak_short_ci(tmp_path):
    """The always-on variant: enough load to cross two publishes."""
    count = _soak(tmp_path, threads=4, refreshes=2, pause=0.02, rounds=2)
    assert count > 0


@pytest.mark.skipif(not SOAK, reason="set REPRO_SOAK=1 for the full soak")
def test_soak_full(tmp_path):
    """The opt-in endurance run: 8 clients across 10 publish cycles."""
    count = _soak(tmp_path, threads=8, refreshes=10, pause=0.1, rounds=4)
    assert count > 1000, f"soak produced suspiciously little load ({count})"
