"""Shared serving-layer fixtures: one tiny committed database per module."""

import pytest

from repro.server import CubetreeServer, ServerConfig

from tests.server.kit import build_database, reference_queries


@pytest.fixture(scope="module")
def database(tmp_path_factory):
    """``(directory, generator, data)`` with generation 1 committed."""
    directory = tmp_path_factory.mktemp("serving-db")
    generator, data = build_database(directory)
    return str(directory), generator, data


@pytest.fixture()
def server(database):
    """A started server over a *fresh copy* of the shared database.

    Refresh mutates the directory (new generations, prunes), so each
    test gets its own copy and its own server.
    """
    import shutil
    import tempfile

    directory, _generator, _data = database
    scratch = tempfile.mkdtemp(prefix="serving-test-")
    copy_dir = f"{scratch}/db"
    shutil.copytree(directory, copy_dir)
    srv = CubetreeServer(copy_dir, ServerConfig(retain=2)).start()
    yield srv
    srv.close()
    shutil.rmtree(scratch, ignore_errors=True)


@pytest.fixture(scope="module")
def workload(database):
    _directory, _generator, data = database
    return reference_queries(data.schema)
