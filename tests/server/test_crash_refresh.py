"""Crash injection through the server's publish path.

The refresh cycle inherits `save_engine`'s crash discipline: the
manifest rename is the commit point.  These tests arm the server's
:class:`CrashPoint` at representative write sites — first page, middle,
checksums, catalog, manifest write, the commit rename itself, and the
post-commit prune — and assert the serving-layer contract on top of the
storage one:

* readers pinned to the old generation never notice a mid-publish crash
  (zero errors, answers bit-equal to the old snapshot);
* a pre-commit crash keeps the deltas queued; the next refresh applies
  them exactly once;
* a post-commit crash (prune) reports the publish as recovered — the
  increment is NOT re-applied (no double counting).
"""

import shutil

import pytest

from repro.core.persistence import save_engine
from repro.server import CubetreeServer, ServerConfig
from repro.storage.wal import CrashPoint

from tests.server.kit import (
    ClientPool,
    ReferenceOracle,
    build_database,
    check_snapshots,
    reference_queries,
)


class CountingCrashPoint(CrashPoint):
    def __init__(self):
        super().__init__()
        self.hits = 0

    def hit(self, context=""):
        self.hits += 1
        super().hit(context)


@pytest.fixture(scope="module")
def crash_db(tmp_path_factory):
    """Template DB + its delta + the number of crashable publish sites."""
    root = tmp_path_factory.mktemp("crash-db")
    directory = str(root / "db")
    generator, data = build_database(directory, scale=0.0003, seed=47)
    delta = generator.generate_increment(0.2, stream="crash")

    # Count the write sites one full publish passes through, using a
    # throwaway copy (the builder path = load + update + save).
    from repro.core.persistence import load_engine

    probe_dir = str(root / "probe")
    shutil.copytree(directory, probe_dir)
    builder = load_engine(probe_dir)
    builder.update(list(delta))
    counter = CountingCrashPoint()
    save_engine(builder, probe_dir, crash_point=counter)
    shutil.rmtree(probe_dir, ignore_errors=True)

    return directory, data, delta, counter.hits


def _named_sites(sites):
    """Representative sites: head, middle, and the five named tail ones."""
    tail = {
        "checksums": sites - 5,
        "catalog": sites - 4,
        "manifest-write": sites - 3,
        "manifest-commit": sites - 2,
        "prune": sites - 1,
    }
    return {"first-page": 0, "mid-pages": max(1, (sites - 5) // 2), **tail}


def _fresh_server(directory, tmp_path, name):
    copy_dir = str(tmp_path / name)
    shutil.copytree(directory, copy_dir)
    return CubetreeServer(copy_dir, ServerConfig(retain=2)).start()


# The site list must be static for parametrize; the fixture asserts the
# real count matches these names at runtime.
SITE_NAMES = (
    "first-page", "mid-pages", "checksums", "catalog",
    "manifest-write", "manifest-commit", "prune",
)


@pytest.mark.parametrize("site", SITE_NAMES)
def test_publish_crash_matrix(crash_db, tmp_path, site):
    directory, data, delta, sites = crash_db
    offsets = _named_sites(sites)
    assert set(offsets) == set(SITE_NAMES)
    queries = reference_queries(data.schema, per_node=1)
    oracle = ReferenceOracle(data, queries)

    server = _fresh_server(directory, tmp_path, f"db-{site}")
    try:
        old_gen = server.manager.current_number
        before = [server.query(q) for q in queries]
        assert all(s.generation == old_gen for s in before)

        server.submit_delta(delta)
        point = CrashPoint()
        point.arm(after=offsets[site])
        server.crash_point = point
        outcome = server.refresh_now()
        assert point.fired, f"site {site} never reached"
        server.crash_point = None

        if site == "prune":
            # Crash AFTER the manifest rename: the commit landed; the
            # server must adopt it and must not keep the deltas.
            assert outcome.status == "published"
            assert outcome.recovered_post_commit
            assert outcome.generation > old_gen
            assert server.pending_delta_rows == 0
        else:
            # Crash BEFORE the commit: old generation keeps serving,
            # deltas stay queued for the retry.
            assert outcome.status == "failed"
            assert server.manager.current_number == old_gen
            assert server.pending_delta_rows == len(delta)
            after_crash = [server.query(q) for q in queries]
            for observed, baseline in zip(after_crash, before):
                assert observed.generation == old_gen
                assert observed.rows == baseline.rows
            # Retry with the injector disarmed: publish succeeds.
            outcome = server.refresh_now()
            assert outcome.status == "published"
            assert not outcome.recovered_post_commit

        # Exactly-once: the published answers equal the oracle's replay
        # of initial + delta applied ONE time.
        oracle.advance(outcome.generation, delta)
        final = [server.query(q) for q in queries]
        for index, observed in enumerate(final):
            assert observed.generation == outcome.generation
            assert observed.rows == oracle.expect(
                outcome.generation, index
            ), f"site {site}: increment not applied exactly once"

        # The directory is not wedged: one more publish commits clean.
        server.submit_delta(delta[: max(1, len(delta) // 4)])
        assert server.refresh_now().status == "published"
    finally:
        server.close()


def test_readers_survive_mid_publish_crash_under_load(crash_db, tmp_path):
    """Concurrent clients ride through a crashed publish + its retry.

    A refresher thread arms a crash mid-pages, watches the publish fail,
    disarms, retries, and succeeds — while client threads query the
    whole time.  Zero client errors; every observation matches the
    oracle snapshot of its tagged generation.
    """
    import threading

    directory, data, delta, sites = crash_db
    queries = reference_queries(data.schema, per_node=1)
    oracle = ReferenceOracle(data, queries)
    server = _fresh_server(directory, tmp_path, "db-load")
    try:
        pool = ClientPool(server, queries, threads=3, extra_parties=1)
        done = threading.Event()
        report = {}

        def refresher():
            pool.barrier.wait()
            try:
                server.submit_delta(delta)
                point = CrashPoint()
                point.arm(after=max(1, (sites - 5) // 2))
                server.crash_point = point
                report["crashed"] = server.refresh_now()
                server.crash_point = None
                report["retried"] = server.refresh_now()
                if report["retried"].status == "published":
                    oracle.advance(report["retried"].generation, delta)
            finally:
                done.set()

        threading.Thread(target=refresher, daemon=True).start()
        observations, errors = pool.run(rounds=2, until=done)

        assert errors == []
        assert report["crashed"].status == "failed"
        assert report["retried"].status == "published"
        seen = check_snapshots(observations, oracle)
        assert seen, "no observations recorded"
    finally:
        server.close()
