"""Pin/publish/prune semantics of the generation manager.

The MVCC contract under test: pinned generations keep their engine and
their files no matter how many publishes supersede them; unpinned
retired generations are pruned down to ``retain``; pin bookkeeping is
exact (double release is an error, not a shrug).
"""

import os

import pytest

from repro.core.persistence import list_generations
from repro.server import CubetreeServer, GenerationManager, ServerConfig
from repro.server.generations import GenerationError

from tests.server.kit import build_database, reference_queries


@pytest.fixture()
def fresh_db(tmp_path):
    generator, data = build_database(tmp_path / "db", scale=0.0003)
    return str(tmp_path / "db"), generator, data


def _publish_increment(server, generator, fraction=0.2, stream="g1"):
    server.submit_delta(generator.generate_increment(fraction, stream=stream))
    outcome = server.refresh_now()
    assert outcome.status == "published"
    return outcome.generation


class TestPinning:
    def test_acquire_release_balance(self, fresh_db):
        directory, _generator, _data = fresh_db
        manager = GenerationManager(directory)
        manager.open()
        first = manager.acquire()
        second = manager.acquire()
        assert first is second
        assert manager.pin_counts() == {first.number: 2}
        manager.release(first)
        assert manager.pin_counts() == {first.number: 1}
        manager.release(second)
        assert manager.pin_counts() == {first.number: 0}

    def test_double_release_raises(self, fresh_db):
        directory, _generator, _data = fresh_db
        manager = GenerationManager(directory)
        manager.open()
        handle = manager.acquire()
        manager.release(handle)
        with pytest.raises(GenerationError, match="not pinned"):
            manager.release(handle)

    def test_acquire_after_close_raises(self, fresh_db):
        directory, _generator, _data = fresh_db
        manager = GenerationManager(directory)
        manager.open()
        manager.close()
        with pytest.raises(GenerationError, match="not serving"):
            manager.acquire()

    def test_open_empty_directory_raises(self, tmp_path):
        manager = GenerationManager(str(tmp_path / "nothing"))
        with pytest.raises(GenerationError, match="no committed generation"):
            manager.open()


class TestPublish:
    def test_publish_supersedes_and_retires(self, fresh_db):
        directory, generator, _data = fresh_db
        server = CubetreeServer(directory, ServerConfig(retain=2)).start()
        try:
            old = server.manager.acquire()
            new_number = _publish_increment(server, generator)
            assert new_number > old.number
            assert old.retired
            # The pinned old generation still answers; new pins get the
            # new generation.
            fresh = server.manager.acquire()
            assert fresh.number == new_number
            server.manager.release(fresh)
            server.manager.release(old)
        finally:
            server.close()

    def test_install_non_superseding_rejected(self, fresh_db):
        directory, _generator, _data = fresh_db
        manager = GenerationManager(directory)
        opened = manager.open()
        with pytest.raises(GenerationError, match="does not supersede"):
            manager.install(opened.number)

    def test_install_uncommitted_rejected(self, fresh_db):
        directory, _generator, data = fresh_db
        manager = GenerationManager(directory)
        manager.open()
        from repro.core.engine import CubetreeEngine

        stray = CubetreeEngine(data.schema, buffer_pages=32)
        with pytest.raises(GenerationError, match="uncommitted"):
            manager.install(999, engine=stray)


class TestPrune:
    def test_pinned_generation_files_survive_publishes(self, fresh_db):
        """retain=1 plus three publishes: only the pin keeps gen 1 alive."""
        directory, generator, data = fresh_db
        server = CubetreeServer(directory, ServerConfig(retain=1)).start()
        try:
            pinned = server.manager.acquire()
            queries = reference_queries(data.schema, per_node=1)
            before = [pinned.engine.query(q).rows for q in queries]
            for stream in ("a", "b", "c"):
                _publish_increment(server, generator, stream=stream)
            on_disk = {n for n, _p, _c in list_generations(directory)}
            assert pinned.number in on_disk, "pinned generation pruned"
            assert os.path.exists(os.path.join(pinned.path, "MANIFEST.json"))
            # ...and it still answers exactly its own snapshot.
            after = [pinned.engine.query(q).rows for q in queries]
            assert after == before
            server.manager.release(pinned)
            # With the pin gone the retired generation becomes prunable
            # on the next prune trigger (a further publish).
            _publish_increment(server, generator, stream="d")
            on_disk = {n for n, _p, _c in list_generations(directory)}
            assert pinned.number not in on_disk
        finally:
            server.close()

    def test_unpinned_generations_prune_to_retain(self, fresh_db):
        directory, generator, _data = fresh_db
        server = CubetreeServer(directory, ServerConfig(retain=2)).start()
        try:
            for stream in ("a", "b", "c", "d"):
                _publish_increment(server, generator, stream=stream)
            committed = [
                n for n, _p, c in list_generations(directory) if c
            ]
            assert len(committed) == 2
            assert server.manager.current_number == max(committed)
        finally:
            server.close()

    def test_describe_reports_pins_and_current(self, fresh_db):
        directory, generator, _data = fresh_db
        server = CubetreeServer(directory, ServerConfig(retain=2)).start()
        try:
            pinned = server.manager.acquire()
            _publish_increment(server, generator)
            listing = {
                entry["generation"]: entry
                for entry in server.manager.describe()
            }
            assert listing[pinned.number]["pins"] == 1
            assert not listing[pinned.number]["current"]
            assert listing[server.manager.current_number]["current"]
            server.manager.release(pinned)
        finally:
            server.close()
