"""The HTTP/JSON API end to end over a real socket.

Routes, status codes, and — the part that matters — the generation tag:
an HTTP client must be able to key snapshot checks off ``generation``
in every query response, exactly like the in-process harness does.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.server import make_http_server


@pytest.fixture()
def endpoint(server):
    httpd = make_http_server(server)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", server
    httpd.shutdown()
    httpd.server_close()


def _call(base, path, body=None):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"},
        method="POST" if body is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestRoutes:
    def test_health(self, endpoint):
        base, server = endpoint
        status, payload = _call(base, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["generation"] == server.manager.current_number

    def test_structured_query_matches_in_process(self, endpoint, workload):
        base, server = endpoint
        query = workload[0]
        body = {
            "group_by": list(query.group_by),
            "bindings": [list(b) for b in query.bindings],
            "ranges": [list(r) for r in query.ranges],
        }
        status, payload = _call(base, "/query", body)
        assert status == 200
        served = server.query(query)
        assert payload["generation"] == served.generation
        assert payload["rows"] == [list(row) for row in served.rows]
        assert payload["row_count"] == len(served.rows)

    def test_sql_query(self, endpoint):
        base, server = endpoint
        status, payload = _call(
            base,
            "/query",
            {"sql": "select partkey, sum(quantity) from F group by partkey"},
        )
        assert status == 200
        assert payload["row_count"] > 0

    def test_batch_shares_one_generation(self, endpoint, workload):
        base, _server = endpoint
        body = {
            "queries": [
                {"group_by": list(q.group_by),
                 "bindings": [list(b) for b in q.bindings],
                 "ranges": [list(r) for r in q.ranges]}
                for q in workload[:3]
            ]
        }
        status, payload = _call(base, "/query/batch", body)
        assert status == 200
        generations = {r["generation"] for r in payload["results"]}
        assert generations == {payload["generation"]}

    def test_delta_then_refresh_publishes(self, endpoint, database):
        base, server = endpoint
        _directory, generator, _data = database
        rows = generator.generate_increment(0.1, stream="http")
        before = server.manager.current_number
        status, payload = _call(base, "/delta", {"rows": [list(r) for r in rows]})
        assert status == 202
        assert payload["pending_rows"] >= len(rows)
        status, payload = _call(base, "/refresh", {})
        assert status == 200
        assert payload["status"] == "published"
        assert payload["generation"] > before
        status, payload = _call(base, "/health")
        assert payload["generation"] > before

    def test_generations_and_stats(self, endpoint):
        base, _server = endpoint
        status, payload = _call(base, "/generations")
        assert status == 200
        assert any(entry["current"] for entry in payload["generations"])
        status, payload = _call(base, "/stats")
        assert status == 200
        assert "admission" in payload and "metrics" in payload


class TestErrors:
    def test_unknown_route_404(self, endpoint):
        base, _server = endpoint
        status, payload = _call(base, "/nope")
        assert status == 404
        assert "error" in payload

    def test_malformed_query_400(self, endpoint):
        base, _server = endpoint
        status, payload = _call(base, "/query", {"group_by": "notalist"})
        assert status == 400
        status, payload = _call(
            base, "/query", {"bindings": [["partkey"]]}
        )
        assert status == 400
        status, payload = _call(base, "/query", {"sql": 42})
        assert status == 400

    def test_bad_sql_400(self, endpoint):
        base, _server = endpoint
        status, payload = _call(base, "/query", {"sql": "select wat"})
        assert status == 400
        assert "error" in payload

    def test_bad_delta_400(self, endpoint):
        base, _server = endpoint
        status, _ = _call(base, "/delta", {"rows": "nope"})
        assert status == 400
        status, _ = _call(base, "/delta", {"rows": [["x", "y"]]})
        assert status == 400

    def test_admission_full_503(self, endpoint, workload):
        base, server = endpoint
        # Choke the queue so the next HTTP query is rejected.
        server.admission.close()
        try:
            query = workload[0]
            status, payload = _call(
                base, "/query", {"group_by": list(query.group_by)}
            )
            assert status == 503
            assert "error" in payload
        finally:
            server.admission.start()
