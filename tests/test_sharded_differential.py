"""Differential sweep: the sharded engine vs. the single-tree engine.

Property: for ANY star schema, fact data, materialized lattice subset,
and slice-query set, a :class:`~repro.core.sharded.ShardedCubetreeEngine`
at N ∈ {1, 2, 3, 5} shards answers bit-for-bit what the unsharded
:class:`~repro.core.engine.CubetreeEngine` answers, across the full
load → query → update → query → checkpoint → recover lifecycle.  At N=1
the agreement extends to the *simulated I/O* (same counters, same float
milliseconds): the single-shard configuration runs the identical call
sequence through one pool, so any drift is a real divergence.

Both engines run **mirrored lifecycles** (fresh engine, same operation
order) — the cost model's accumulator is position-dependent in the last
float ulp, so only identical histories compare exactly.

Example count scales with ``REPRO_DIFF_EXAMPLES`` (default 200 locally;
CI sets a smaller smoke profile).
"""

import os
from itertools import combinations

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.engine import CubetreeEngine
from repro.core.persistence import load_any_engine, save_database
from repro.core.sharded import ShardedCubetreeEngine
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.warehouse.star import Dimension, StarSchema

EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "200"))

SHARD_COUNTS = (1, 2, 3, 5)

#: Candidate fact-key names (2-3 are drawn per schema).
KEY_NAMES = ("ka", "kb", "kc")


def _make_schema(domain_sizes):
    dimensions = {}
    for name, size in domain_sizes.items():
        dimensions[name] = Dimension(
            name=f"dim_{name}",
            key=name,
            attributes=(name,),
            rows=[(value,) for value in range(1, size + 1)],
        )
    return StarSchema(
        fact_keys=tuple(domain_sizes),
        measure="quantity",
        dimensions=dimensions,
    )


@st.composite
def warehouses(draw):
    """A random star schema plus fact rows (integer-valued measures)."""
    n_keys = draw(st.integers(min_value=2, max_value=3))
    keys = KEY_NAMES[:n_keys]
    domain_sizes = {
        key: draw(st.integers(min_value=2, max_value=6)) for key in keys
    }
    rows = draw(
        st.lists(
            st.tuples(
                *[
                    st.integers(min_value=1, max_value=domain_sizes[key])
                    for key in keys
                ],
                st.integers(min_value=0, max_value=20),
            ),
            min_size=2,
            max_size=50,
        )
    )
    # Integer-valued float quantities: float sums stay exact, so the
    # engines' answers can be compared with ==.
    facts = [tuple(row[:-1]) + (float(row[-1]),) for row in rows]
    return domain_sizes, facts


@st.composite
def view_subsets(draw, keys):
    """The apex + V_none + a random subset of the proper lattice nodes."""
    nodes = [("apex", tuple(keys)), ("none", ())]
    middles = [
        node
        for size in range(1, len(keys))
        for node in combinations(keys, size)
    ]
    chosen = draw(
        st.lists(st.sampled_from(middles), unique=True, max_size=len(middles))
        if middles
        else st.just([])
    )
    nodes.extend((f"v_{'_'.join(node)}", node) for node in chosen)
    return [ViewDefinition(name, group_by) for name, group_by in nodes]


@st.composite
def slice_queries(draw, domain_sizes):
    """A random slice query over the schema's fact keys."""
    keys = list(domain_sizes)
    node = draw(
        st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
    )
    bound = draw(
        st.lists(st.sampled_from(node), unique=True, max_size=len(node))
        if node
        else st.just([])
    )
    bindings = []
    ranges = []
    for attr in bound:
        size = domain_sizes[attr]
        if draw(st.booleans()):
            bindings.append(
                (attr, draw(st.integers(min_value=1, max_value=size)))
            )
        else:
            low = draw(st.integers(min_value=1, max_value=size))
            high = draw(st.integers(min_value=low, max_value=size))
            ranges.append((attr, low, high))
    group_by = tuple(a for a in node if a not in set(bound))
    return SliceQuery(group_by, tuple(bindings), tuple(ranges))


@st.composite
def differential_cases(draw):
    domain_sizes, facts = draw(warehouses())
    views = draw(view_subsets(tuple(domain_sizes)))
    queries = draw(
        st.lists(slice_queries(domain_sizes), min_size=1, max_size=4)
    )
    return domain_sizes, facts, views, queries


def _io_record(io):
    return (
        io.sequential_reads,
        io.random_reads,
        io.sequential_writes,
        io.random_writes,
        io.simulated_ms,
        io.overhead_ms,
    )


def _lifecycle(engine, views, initial, delta, queries):
    """One mirrored lifecycle; returns (rows trace, io trace)."""
    rows_trace = []
    io_trace = []
    load = engine.materialize(views, initial)
    io_trace.append(_io_record(load.phases["views"].io))
    for query in queries:
        result = engine.query(query)
        rows_trace.append(result.rows)
        io_trace.append(_io_record(result.io))
    update = engine.update(delta)
    rows_trace.append(update.rows_applied)
    io_trace.append(_io_record(update.io))
    for query in queries:
        result = engine.query(query)
        rows_trace.append(result.rows)
        io_trace.append(_io_record(result.io))
    return rows_trace, io_trace


@given(differential_cases())
@settings(max_examples=EXAMPLES, deadline=None)
def test_sharded_lifecycle_matches_single_engine(case):
    """Rows identical at every N; simulated I/O identical at N=1."""
    domain_sizes, facts, views, queries = case
    schema = _make_schema(domain_sizes)
    split = len(facts) // 2
    initial, delta = facts[:split] or facts, facts[split:] or facts

    base = CubetreeEngine(schema, buffer_pages=64)
    base_rows, base_io = _lifecycle(base, views, initial, delta, queries)

    for num_shards in SHARD_COUNTS:
        engine = ShardedCubetreeEngine(
            schema, buffer_pages=64, shards=num_shards
        )
        rows, io = _lifecycle(engine, views, initial, delta, queries)
        assert rows == base_rows, f"N={num_shards}"
        if num_shards == 1:
            assert io == base_io, "N=1 must be byte-identical"


@given(differential_cases())
@settings(max_examples=max(10, EXAMPLES // 10), deadline=None)
def test_sharded_checkpoint_recover_matches(tmp_path_factory, case):
    """Checkpoint → recover preserves every shard count's answers."""
    domain_sizes, facts, views, queries = case
    schema = _make_schema(domain_sizes)
    split = len(facts) // 2
    initial, delta = facts[:split] or facts, facts[split:] or facts

    base = CubetreeEngine(schema, buffer_pages=64)
    base.materialize(views, initial)
    base.update(delta)
    expected = [base.query(q).rows for q in queries]

    for num_shards in (1, 3):
        engine = ShardedCubetreeEngine(
            schema, buffer_pages=64, shards=num_shards
        )
        engine.materialize(views, initial)
        engine.update(delta)
        directory = str(
            tmp_path_factory.mktemp(f"sharded-diff-n{num_shards}")
        )
        save_database(engine, directory)
        recovered = load_any_engine(directory)
        assert recovered.view_sizes() == base.view_sizes()
        got = [recovered.query(q).rows for q in queries]
        assert got == expected, f"N={num_shards}"
