"""Tests for compressed bitmaps and bitmap indexes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.bitmap import BitmapIndex, CompressedBitmap
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool():
    return BufferPool(DiskManager(), capacity=64)


# ----------------------------------------------------------------------
# CompressedBitmap
# ----------------------------------------------------------------------
def test_empty_bitmap():
    bitmap = CompressedBitmap.from_positions([], 1000)
    assert list(bitmap.positions()) == []
    assert bitmap.count() == 0


def test_simple_positions_roundtrip():
    positions = [0, 5, 62, 63, 64, 500]
    bitmap = CompressedBitmap.from_positions(positions, 501)
    assert list(bitmap.positions()) == positions
    assert bitmap.count() == len(positions)


def test_sparse_bitmap_compresses():
    """A single bit in a huge domain needs only a fill + a literal word."""
    bitmap = CompressedBitmap.from_positions([600_000], 1_000_000)
    assert len(bitmap.words) <= 3


def test_serialization_roundtrip():
    positions = sorted(random.Random(4).sample(range(10_000), 300))
    bitmap = CompressedBitmap.from_positions(positions, 10_000)
    clone = CompressedBitmap.from_bytes(bitmap.to_bytes())
    assert list(clone.positions()) == positions
    assert clone.num_bits == 10_000


def test_logical_and():
    a = CompressedBitmap.from_positions([1, 5, 9, 100], 200)
    b = CompressedBitmap.from_positions([5, 9, 150], 200)
    assert list(a.logical_and(b).positions()) == [5, 9]


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(0, 5000), max_size=300))
def test_bitmap_roundtrip_property(positions):
    ordered = sorted(positions)
    bitmap = CompressedBitmap.from_positions(ordered, 5001)
    assert list(bitmap.positions()) == ordered
    assert bitmap.count() == len(ordered)
    clone = CompressedBitmap.from_bytes(bitmap.to_bytes())
    assert list(clone.positions()) == ordered


# ----------------------------------------------------------------------
# BitmapIndex
# ----------------------------------------------------------------------
def test_index_equality_lookup():
    pool = make_pool()
    values = [1, 2, 1, 3, 2, 1]
    index = BitmapIndex.build(pool, values)
    assert index.ordinals_equal(1) == [0, 2, 5]
    assert index.ordinals_equal(2) == [1, 4]
    assert index.ordinals_equal(99) == []
    assert index.bitmap_for(99) is None


def test_index_range_lookup():
    pool = make_pool()
    values = [5, 1, 3, 5, 2]
    index = BitmapIndex.build(pool, values)
    assert index.ordinals_in_range(2, 5) == [0, 2, 3, 4]


def test_index_distinct_values_and_pages():
    pool = make_pool()
    values = [i % 7 for i in range(1000)]
    index = BitmapIndex.build(pool, values)
    assert index.distinct_values() == list(range(7))
    assert index.num_pages >= 7  # one blob (>=1 page) per value


def test_index_lookup_charges_io():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=4)
    values = [i % 5 for i in range(2000)]
    index = BitmapIndex.build(pool, values)
    before = disk.cost_model.snapshot()
    index.ordinals_equal(3)
    delta = disk.cost_model.stats - before
    assert delta.reads >= 1


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 9), max_size=400))
def test_index_matches_naive_property(values):
    pool = make_pool()
    index = BitmapIndex.build(pool, values)
    for value in set(values):
        expected = [i for i, v in enumerate(values) if v == value]
        assert index.ordinals_equal(value) == expected
