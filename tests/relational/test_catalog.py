"""Tests for the catalog."""

import pytest

from repro.errors import CatalogError
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.relational.view import MaterializedView, ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.codec import int_column
from repro.storage.disk import DiskManager


def make_env():
    disk = DiskManager()
    pool = BufferPool(disk)
    table = Table(pool, TableSchema("F", [("a", int_column())]))
    view = MaterializedView(pool, ViewDefinition("V_a", ("a",)))
    return pool, table, view


def test_register_and_get_table():
    _pool, table, _view = make_env()
    cat = Catalog()
    cat.register_table(table)
    assert cat.table("F") is table
    assert cat.has_table("F")
    assert cat.table_names() == ["F"]


def test_duplicate_table_raises():
    _pool, table, _view = make_env()
    cat = Catalog()
    cat.register_table(table)
    with pytest.raises(CatalogError):
        cat.register_table(table)


def test_unknown_table_raises():
    cat = Catalog()
    with pytest.raises(CatalogError):
        cat.table("nope")
    with pytest.raises(CatalogError):
        cat.drop_table("nope")


def test_drop_table():
    _pool, table, _view = make_env()
    cat = Catalog()
    cat.register_table(table)
    cat.drop_table("F")
    assert not cat.has_table("F")


def test_register_and_get_view():
    _pool, _table, view = make_env()
    cat = Catalog()
    cat.register_view(view)
    assert cat.view("V_a") is view
    assert cat.has_view("V_a")
    assert cat.view_names() == ["V_a"]
    assert cat.views() == [view]


def test_duplicate_view_raises():
    _pool, _table, view = make_env()
    cat = Catalog()
    cat.register_view(view)
    with pytest.raises(CatalogError):
        cat.register_view(view)


def test_unknown_view_raises():
    cat = Catalog()
    with pytest.raises(CatalogError):
        cat.view("nope")
    with pytest.raises(CatalogError):
        cat.drop_view("nope")


def test_drop_view():
    _pool, _table, view = make_env()
    cat = Catalog()
    cat.register_view(view)
    cat.drop_view("V_a")
    assert not cat.has_view("V_a")
