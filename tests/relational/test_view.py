"""Tests for materialized views and their maintenance."""

import pytest

from repro.errors import SchemaError, UpdateTimeoutError
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import MaterializedView, ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool():
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=256)


def simple_view_def(name="V_a_b"):
    return ViewDefinition(name, ("a", "b"))


def test_definition_properties():
    vdef = simple_view_def()
    assert vdef.arity == 2
    assert vdef.total_state_width == 1
    assert vdef.state_slices() == ((AggFunc.SUM, slice(2, 3)),)


def test_definition_duplicate_group_attrs_raise():
    with pytest.raises(SchemaError):
        ViewDefinition("V", ("a", "a"))


def test_definition_no_aggregates_raises():
    with pytest.raises(SchemaError):
        ViewDefinition("V", ("a",), aggregates=())


def test_definition_schema_columns():
    vdef = ViewDefinition(
        "V", ("a",),
        aggregates=(AggSpec(AggFunc.SUM, "q"), AggSpec(AggFunc.AVG, "q")),
    )
    schema = vdef.schema()
    assert schema.column_names == ("a", "sum_q", "avg_q_sum", "avg_q_count")


def test_definition_describe():
    assert simple_view_def().describe() == (
        "select a, b, sum(quantity) from F group by a, b"
    )
    assert ViewDefinition("V_none", ()).describe() == (
        "select sum(quantity) from F"
    )


def test_materialize_and_scan():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    rows = [(1, 1, 10.0), (1, 2, 20.0), (2, 1, 5.0)]
    view.materialize(rows)
    assert len(view) == 3
    assert list(view.table.scan_rows()) == rows


def test_build_index_and_lookup():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(i, i * 2, float(i)) for i in range(1, 200)])
    tree = view.build_index(("a", "b"))
    rid = tree.search_one((50, 100))
    assert rid is not None
    assert view.table.fetch(rid) == (50, 100, 50.0)


def test_build_index_permuted_key():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(1, 9, 4.0)])
    tree = view.build_index(("b", "a"))
    assert tree.search_one((9, 1)) is not None


def test_apply_delta_updates_existing_group():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(1, 1, 10.0), (2, 2, 5.0)])
    view.build_index(("a", "b"))
    updated, inserted = view.apply_delta([(1, 1, 7.0)])
    assert (updated, inserted) == (1, 0)
    rows = {(r[0], r[1]): r[2] for r in view.table.scan_rows()}
    assert rows[(1, 1)] == 17.0


def test_apply_delta_inserts_new_group_and_maintains_indexes():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(1, 1, 10.0)])
    view.build_index(("a", "b"))
    updated, inserted = view.apply_delta([(3, 3, 9.0)])
    assert (updated, inserted) == (0, 1)
    assert view.indexes[("a", "b")].search_one((3, 3)) is not None


def test_apply_delta_without_index_scans():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(1, 1, 10.0)])
    updated, inserted = view.apply_delta([(1, 1, 1.0), (2, 2, 2.0)])
    assert (updated, inserted) == (1, 1)


def test_apply_delta_uses_permuted_index():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(1, 5, 10.0)])
    view.build_index(("b", "a"))
    updated, _ = view.apply_delta([(1, 5, 3.0)])
    assert updated == 1
    rows = list(view.table.scan_rows())
    assert rows == [(1, 5, 13.0)]


def test_apply_delta_timeout():
    # Tiny pool: lookups/updates must actually touch the (simulated) disk.
    disk = DiskManager()
    pool = BufferPool(disk, capacity=8)
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(i, i, 1.0) for i in range(1, 2000)])
    view.build_index(("a", "b"))
    delta = [(i, i, 1.0) for i in range(1, 2000)]
    with pytest.raises(UpdateTimeoutError):
        view.apply_delta(delta, cost_model=disk.cost_model, deadline_ms=1.0)


def test_avg_view_delta_merges_states():
    _disk, pool = make_pool()
    vdef = ViewDefinition("V", ("a",), aggregates=(AggSpec(AggFunc.AVG, "q"),))
    view = MaterializedView(pool, vdef)
    view.materialize([(1, 10.0, 2.0)])  # sum=10, count=2
    view.apply_delta([(1, 5.0, 1.0)])
    assert list(view.table.scan_rows()) == [(1, 15.0, 3.0)]


def test_page_counts():
    _disk, pool = make_pool()
    view = MaterializedView(pool, simple_view_def())
    view.materialize([(i, i, 1.0) for i in range(1, 5000)])
    view.build_index(("a", "b"))
    assert view.data_pages > 1
    assert view.index_pages > 1
