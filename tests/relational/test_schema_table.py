"""Tests for table schemas and tables."""

import pytest

from repro.errors import InvalidRecordError, SchemaError
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.storage.buffer import BufferPool
from repro.storage.codec import float_column, int_column, string_column
from repro.storage.disk import DiskManager


def fact_schema():
    return TableSchema("F", [
        ("partkey", int_column()),
        ("suppkey", int_column()),
        ("custkey", int_column()),
        ("quantity", float_column()),
    ])


def make_table(schema=None):
    disk = DiskManager()
    pool = BufferPool(disk)
    return Table(pool, schema or fact_schema())


def test_schema_basics():
    schema = fact_schema()
    assert schema.arity == 4
    assert schema.index_of("custkey") == 2
    assert schema.indexes_of(["quantity", "partkey"]) == (3, 0)
    assert schema.has_column("suppkey")
    assert not schema.has_column("nope")


def test_schema_unknown_column_raises():
    with pytest.raises(SchemaError):
        fact_schema().index_of("nope")


def test_schema_duplicate_columns_raise():
    with pytest.raises(SchemaError):
        TableSchema("T", [("a", int_column()), ("a", int_column())])


def test_schema_empty_raises():
    with pytest.raises(SchemaError):
        TableSchema("T", [])


def test_schema_codec_roundtrip():
    schema = TableSchema("D", [
        ("key", int_column()), ("name", string_column(16)),
    ])
    codec = schema.codec()
    assert codec.decode(codec.encode((5, "widget"))) == (5, "widget")


def test_table_insert_fetch_update_delete():
    table = make_table()
    rid = table.insert((1, 2, 3, 10.0))
    assert table.fetch(rid) == (1, 2, 3, 10.0)
    table.update(rid, (1, 2, 3, 99.0))
    assert table.fetch(rid) == (1, 2, 3, 99.0)
    table.delete(rid)
    assert len(table) == 0


def test_table_wrong_arity_raises():
    table = make_table()
    with pytest.raises(InvalidRecordError):
        table.insert((1, 2))


def test_table_bulk_append_and_scan():
    table = make_table()
    rows = [(i, i, i, float(i)) for i in range(300)]
    table.bulk_append(rows)
    assert list(table.scan_rows()) == rows
    assert table.num_pages > 1


def test_table_name():
    assert make_table().name == "F"
