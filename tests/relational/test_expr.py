"""Tests for predicates."""

import pytest

from repro.errors import SchemaError
from repro.relational.expr import (
    And,
    Between,
    Equals,
    TruePredicate,
    equals_conjunction,
)
from repro.relational.schema import TableSchema
from repro.storage.codec import int_column


def schema():
    return TableSchema("T", [
        ("a", int_column()), ("b", int_column()), ("c", int_column()),
    ])


def test_true_predicate():
    check = TruePredicate().compile(schema())
    assert check((1, 2, 3))
    assert TruePredicate().attributes() == ()


def test_equals():
    pred = Equals("b", 7)
    check = pred.compile(schema())
    assert check((0, 7, 0))
    assert not check((7, 0, 0))
    assert pred.attributes() == ("b",)


def test_equals_unknown_attribute_raises():
    with pytest.raises(SchemaError):
        Equals("nope", 1).compile(schema())


def test_between():
    check = Between("a", 2, 5).compile(schema())
    assert check((2, 0, 0))
    assert check((5, 0, 0))
    assert not check((6, 0, 0))


def test_and():
    pred = And(Equals("a", 1), Between("c", 0, 10))
    check = pred.compile(schema())
    assert check((1, 99, 5))
    assert not check((1, 99, 11))
    assert not check((2, 99, 5))
    assert pred.attributes() == ("a", "c")


def test_equals_conjunction_empty():
    assert isinstance(equals_conjunction([]), TruePredicate)


def test_equals_conjunction_single():
    pred = equals_conjunction([("a", 3)])
    assert pred == Equals("a", 3)


def test_equals_conjunction_multi():
    pred = equals_conjunction([("a", 3), ("b", 4)])
    check = pred.compile(schema())
    assert check((3, 4, 0))
    assert not check((3, 5, 0))
