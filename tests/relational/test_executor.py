"""Tests for physical operators and aggregate-state helpers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.executor import (
    AggFunc,
    AggSpec,
    combine_states,
    external_sort,
    filter_rows,
    finalize_state,
    hash_join,
    init_state,
    merge_value,
    project,
    reaggregate_states,
    sort_group_aggregate,
    state_width,
)
from repro.storage.buffer import BufferPool
from repro.storage.codec import RecordCodec, float_column, int_column
from repro.storage.disk import DiskManager


# ----------------------------------------------------------------------
# aggregate-state helpers
# ----------------------------------------------------------------------
def test_state_widths():
    assert state_width(AggFunc.SUM) == 1
    assert state_width(AggFunc.AVG) == 2


def test_agg_spec_str():
    assert str(AggSpec(AggFunc.SUM, "quantity")) == "sum(quantity)"
    assert str(AggSpec(AggFunc.COUNT)) == "count(*)"


def test_sum_lifecycle():
    state = init_state(AggFunc.SUM, 5.0)
    state = merge_value(AggFunc.SUM, state, 3.0)
    assert finalize_state(AggFunc.SUM, state) == 8.0


def test_count_lifecycle():
    state = init_state(AggFunc.COUNT, 99.0)
    state = merge_value(AggFunc.COUNT, state, 99.0)
    assert finalize_state(AggFunc.COUNT, state) == 2.0


def test_min_max_lifecycle():
    s = init_state(AggFunc.MIN, 5.0)
    s = merge_value(AggFunc.MIN, s, 9.0)
    assert finalize_state(AggFunc.MIN, s) == 5.0
    s = init_state(AggFunc.MAX, 5.0)
    s = merge_value(AggFunc.MAX, s, 9.0)
    assert finalize_state(AggFunc.MAX, s) == 9.0


def test_avg_lifecycle():
    s = init_state(AggFunc.AVG, 4.0)
    s = merge_value(AggFunc.AVG, s, 8.0)
    assert s == (12.0, 2.0)
    assert finalize_state(AggFunc.AVG, s) == 6.0


def test_avg_empty_state_finalizes_to_zero():
    assert finalize_state(AggFunc.AVG, (0.0, 0.0)) == 0.0


def test_combine_states():
    assert combine_states(AggFunc.SUM, (3.0,), (4.0,)) == (7.0,)
    assert combine_states(AggFunc.MIN, (3.0,), (4.0,)) == (3.0,)
    assert combine_states(AggFunc.MAX, (3.0,), (4.0,)) == (4.0,)
    assert combine_states(AggFunc.AVG, (3.0, 1.0), (5.0, 2.0)) == (8.0, 3.0)


# ----------------------------------------------------------------------
# basic operators
# ----------------------------------------------------------------------
def test_filter_and_project():
    rows = [(1, 10), (2, 20), (3, 30)]
    kept = list(filter_rows(rows, lambda r: r[0] >= 2))
    assert kept == [(2, 20), (3, 30)]
    assert list(project(kept, [1])) == [(20,), (30,)]


def test_hash_join():
    left = [(1, "x"), (2, "y"), (2, "z")]
    right = [(2, 20), (3, 30)]
    out = sorted(hash_join(left, right, 0, 0))
    assert out == [(2, "y", 2, 20), (2, "z", 2, 20)]


def test_hash_join_no_matches():
    assert list(hash_join([(1,)], [(2,)], 0, 0)) == []


# ----------------------------------------------------------------------
# external sort
# ----------------------------------------------------------------------
def make_pool():
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=128)


def test_external_sort_in_memory_path():
    _disk, pool = make_pool()
    codec = RecordCodec([int_column()])
    rows = [(i,) for i in range(100)]
    random.Random(1).shuffle(rows)
    out = list(external_sort(pool, codec, rows, key=lambda r: r))
    assert out == [(i,) for i in range(100)]


def test_external_sort_spills_and_merges():
    disk, pool = make_pool()
    codec = RecordCodec([int_column(), float_column()])
    n = 5000
    rows = [(i, float(i)) for i in range(n)]
    random.Random(2).shuffle(rows)
    allocated_before = disk.num_allocated
    out = list(external_sort(pool, codec, rows, key=lambda r: (r[0],),
                             chunk_rows=500))
    assert out == [(i, float(i)) for i in range(n)]
    # Temporary run pages are freed after the merge.
    assert disk.num_allocated == allocated_before


def test_external_sort_with_duplicates_is_stable_sorted():
    _disk, pool = make_pool()
    codec = RecordCodec([int_column(), int_column()])
    rows = [(i % 5, i) for i in range(2000)]
    out = list(external_sort(pool, codec, rows, key=lambda r: (r[0],),
                             chunk_rows=100))
    assert [r[0] for r in out] == sorted(r[0] for r in rows)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(-1000, 1000), max_size=1500))
def test_external_sort_property(values):
    _disk, pool = make_pool()
    codec = RecordCodec([int_column()])
    rows = [(v,) for v in values]
    out = list(external_sort(pool, codec, rows, key=lambda r: r,
                             chunk_rows=200))
    assert out == sorted(rows)


# ----------------------------------------------------------------------
# sort-group aggregation
# ----------------------------------------------------------------------
def test_sort_group_aggregate_sum():
    rows = [(1, 10.0), (1, 5.0), (2, 7.0)]
    out = list(sort_group_aggregate(rows, [0], [(AggFunc.SUM, 1)]))
    assert out == [(1, 15.0), (2, 7.0)]


def test_sort_group_aggregate_multiple_functions():
    rows = [(1, 10.0), (1, 4.0), (2, 7.0)]
    out = list(sort_group_aggregate(
        rows, [0],
        [(AggFunc.SUM, 1), (AggFunc.COUNT, 1), (AggFunc.AVG, 1)],
    ))
    assert out == [(1, 14.0, 2.0, 14.0, 2.0), (2, 7.0, 1.0, 7.0, 1.0)]


def test_sort_group_aggregate_composite_group():
    rows = [(1, 1, 2.0), (1, 1, 3.0), (1, 2, 4.0)]
    out = list(sort_group_aggregate(rows, [0, 1], [(AggFunc.SUM, 2)]))
    assert out == [(1, 1, 5.0), (1, 2, 4.0)]


def test_sort_group_aggregate_empty():
    assert list(sort_group_aggregate([], [0], [(AggFunc.SUM, 1)])) == []


def test_sort_group_aggregate_grand_total():
    """Empty group list produces the super aggregate."""
    rows = [(1, 2.0), (2, 3.0), (3, 4.0)]
    out = list(sort_group_aggregate(rows, [], [(AggFunc.SUM, 1)]))
    assert out == [(9.0,)]


def test_reaggregate_states():
    # Input: (a, b, sum_state) rows from a finer view, sorted by a.
    rows = [(1, 1, 5.0), (1, 2, 7.0), (2, 1, 3.0)]
    out = list(reaggregate_states(
        rows, [0], [(AggFunc.SUM, slice(2, 3))]
    ))
    assert out == [(1, 12.0), (2, 3.0)]


def test_reaggregate_states_avg():
    rows = [(1, 4.0, 2.0), (1, 6.0, 1.0), (2, 1.0, 1.0)]
    out = list(reaggregate_states(
        rows, [0], [(AggFunc.AVG, slice(1, 3))]
    ))
    assert out == [(1, 10.0, 3.0), (2, 1.0, 1.0)]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 100)),
                max_size=300))
def test_group_sum_matches_dict_property(pairs):
    rows = sorted((g, float(v)) for g, v in pairs)
    out = dict(
        (r[0], r[1])
        for r in sort_group_aggregate(rows, [0], [(AggFunc.SUM, 1)])
    )
    expected: dict = {}
    for g, v in pairs:
        expected[g] = expected.get(g, 0.0) + float(v)
    assert out == expected
