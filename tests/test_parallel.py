"""Tests for the REPRO_WORKERS parallel helpers and their gating.

The load-bearing properties are the *fallbacks*: every configuration —
any worker count, any input size — must produce results identical to the
serial pipeline, and small inputs must never reach a process pool at all
(a worker round-trip costs more than the work).  The differential sweep
in ``tests/test_differential.py`` covers output identity on the pool
path; this module covers the plumbing and the gates.
"""

import pytest

from repro.cube.computation import CubeComputation
from repro.cube.parallel import ParallelCubeComputation, _compute_step
from repro.parallel import MIN_PARALLEL_ROWS, run_tasks, worker_count
from repro.relational.view import ViewDefinition
from repro.warehouse.star import Dimension, StarSchema


def _square(x):
    return x * x


def small_schema():
    part = Dimension("part", "partkey", ("partkey",),
                     rows=[(i,) for i in range(1, 9)])
    supp = Dimension("supplier", "suppkey", ("suppkey",),
                     rows=[(i,) for i in range(1, 5)])
    return StarSchema(("partkey", "suppkey"), "quantity",
                      {"partkey": part, "suppkey": supp})


def facts(n=64):
    return [(i % 8 + 1, i % 4 + 1, float(i % 10)) for i in range(n)]


def views():
    return [
        ViewDefinition("V_ps", ("partkey", "suppkey")),
        ViewDefinition("V_p", ("partkey",)),
        ViewDefinition("V_none", ()),
    ]


# ----------------------------------------------------------------------
# worker_count / run_tasks
# ----------------------------------------------------------------------
def test_worker_count_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert worker_count() == 1
    assert worker_count(default=3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert worker_count() == 4
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert worker_count() == 1  # clamped to at least one
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    assert worker_count() == 1


def test_run_tasks_serial_inline():
    assert run_tasks(_square, [1, 2, 3], workers=1) == [1, 4, 9]
    assert run_tasks(_square, [5], workers=8) == [25]
    assert run_tasks(_square, [], workers=8) == []


def test_run_tasks_pool_preserves_order():
    assert run_tasks(_square, list(range(10)), workers=2) == [
        x * x for x in range(10)
    ]


# ----------------------------------------------------------------------
# ParallelCubeComputation gating
# ----------------------------------------------------------------------
def test_worker_payload_matches_inline_compute():
    schema = small_schema()
    serial = CubeComputation(schema)
    view = views()[0]
    payload = (schema, {}, view, None, facts())
    assert _compute_step(payload) == serial.compute_from_fact_rows(
        facts(), view
    )


def test_single_worker_uses_serial_pipeline():
    schema = small_schema()
    serial = CubeComputation(schema).execute(facts(), views())
    parallel = ParallelCubeComputation(schema, workers=1).execute(
        facts(), views()
    )
    assert parallel == serial


def test_small_inputs_never_reach_the_pool(monkeypatch):
    comp = ParallelCubeComputation(small_schema(), workers=4)
    assert len(facts()) < comp.min_parallel_rows

    def boom(*_args, **_kwargs):  # the pool must not be created
        raise AssertionError("pool engaged for a sub-threshold input")

    monkeypatch.setattr("repro.cube.parallel.shared_pool", boom)
    serial = CubeComputation(small_schema()).execute(facts(), views())
    assert comp.execute(facts(), views()) == serial


def test_oversized_inputs_fall_back_for_spill_identity(monkeypatch):
    comp = ParallelCubeComputation(
        small_schema(), workers=4, serial_row_threshold=32,
        min_parallel_rows=1,
    )
    monkeypatch.setattr(
        "repro.cube.parallel.shared_pool",
        lambda *_: pytest.fail("pool engaged above the spill threshold"),
    )
    rows = facts(64)  # above serial_row_threshold
    serial = CubeComputation(small_schema()).execute(rows, views())
    assert comp.execute(rows, views()) == serial


def test_pool_path_matches_serial_when_forced():
    schema = small_schema()
    comp = ParallelCubeComputation(schema, workers=2, min_parallel_rows=1)
    serial = CubeComputation(schema).execute(facts(), views())
    got = comp.execute(facts(), views())
    assert list(got) == list(serial)  # plan-step ordering preserved
    assert got == serial


def test_partition_keeps_groups_whole():
    schema = small_schema()
    comp = ParallelCubeComputation(schema, workers=3, min_parallel_rows=1)
    view = views()[0]
    buckets = comp._split(view, None, facts())
    assert buckets is not None and len(buckets) > 1
    assert sorted(
        row for bucket in buckets for row in bucket
    ) == sorted(facts())
    # No first-coordinate value appears in two buckets.
    firsts = [{row[0] for row in bucket} for bucket in buckets]
    for i, a in enumerate(firsts):
        for b in firsts[i + 1:]:
            assert not (a & b)


def test_split_declines_hierarchy_and_tiny_inputs():
    schema = small_schema()
    comp = ParallelCubeComputation(schema, workers=2, min_parallel_rows=1)
    # Arity-0 views have nothing to partition on.
    assert comp._split(ViewDefinition("V_none", ()), None, facts()) is None
    # Below min_parallel_rows the step runs inline.
    tall = ParallelCubeComputation(schema, workers=2)
    assert tall.min_parallel_rows == MIN_PARALLEL_ROWS
    assert tall._split(views()[0], None, facts()) is None
