"""Tests for the flow-aware invariant rules.

Covers per-rule detection and non-detection on synthetic fixtures, the
four acceptance mutants seeded from real sources (deleted unpin, removed
crash hit, obs->storage call, unannotated module dict), and the
suppression-baseline machinery.
"""

import json
import os
import textwrap

import pytest

from repro.analysis.flowrules import (
    FLOW_RULES,
    analyze_paths,
    analyze_sources,
    apply_baseline,
    canonical_path,
    finding_fingerprint,
    findings_payload,
    format_inventory,
    load_baseline,
    parse_annotations,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")


def flow(source, path="src/repro/core/unit.py", **extra):
    sources = {path: textwrap.dedent(source)}
    for extra_path, extra_src in extra.items():
        sources[extra_path] = textwrap.dedent(extra_src)
    return analyze_sources(sources).findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# pin-balance
# ----------------------------------------------------------------------
def test_pin_leak_on_early_return_detected():
    findings = flow(
        """
        def f(pool, pid, flag):
            page = pool.fetch_page(pid)
            if flag:
                return 0
            pool.unpin_page(page.page_id)
            return 1
        """
    )
    assert rules_of(findings) == ["pin-balance"]
    assert "fetch_page" in findings[0].message


def test_balanced_try_finally_is_clean():
    assert (
        flow(
            """
            def f(pool, pid):
                page = pool.fetch_page(pid)
                try:
                    return page.data[0]
                finally:
                    pool.unpin_page(page.page_id)
            """
        )
        == []
    )


def test_release_by_id_expression_matches():
    assert (
        flow(
            """
            def f(pool, pid):
                page = pool.fetch_page(pid)
                value = page.data[0]
                pool.unpin_page(pid)
                return value
            """
        )
        == []
    )


def test_returning_the_page_transfers_ownership():
    assert (
        flow(
            """
            def f(pool, pid):
                page = pool.fetch_page(pid)
                return decode(page), page
            """
        )
        == []
    )


def test_returning_only_an_attribute_does_not_escape():
    findings = flow(
        """
        def f(pool):
            page = pool.new_page()
            return page.page_id
        """
    )
    assert rules_of(findings) == ["pin-balance"]


def test_fetch_node_tuple_unpack_and_release_helper():
    assert (
        flow(
            """
            def f(self, pid):
                node, page = self._fetch_node(pid)
                value = node.keys[0]
                self._release(page)
                return value
            """
        )
        == []
    )


def test_yield_abandonment_without_finally_detected():
    findings = flow(
        """
        def gen(pool, pid):
            page = pool.fetch_page(pid)
            yield page.data[0]
            pool.unpin_page(page.page_id)
        """
    )
    assert rules_of(findings) == ["pin-balance"]


def test_yield_inside_try_finally_is_clean():
    assert (
        flow(
            """
            def gen(pool, pid):
                page = pool.fetch_page(pid)
                try:
                    yield page.data[0]
                finally:
                    pool.unpin_page(page.page_id)
            """
        )
        == []
    )


def test_loop_with_per_iteration_release_is_clean():
    assert (
        flow(
            """
            def walk(pool, pid):
                while pid != -1:
                    page = pool.fetch_page(pid)
                    pid = page.data[0]
                    pool.unpin_page(page.page_id)
                return pid
            """
        )
        == []
    )


def test_raise_path_leak_detected():
    findings = flow(
        """
        def f(pool, pid):
            page = pool.fetch_page(pid)
            if page.data[0] == 0:
                raise ValueError("empty")
            pool.unpin_page(page.page_id)
            return 1
        """
    )
    assert rules_of(findings) == ["pin-balance"]


def test_lint_ignore_suppresses_pin_finding():
    assert (
        flow(
            """
            def f(pool, handoff):
                page = pool.new_page()  # lint: ignore[pin-balance]
                handoff[page.page_id] = page
            """
        )
        == []
    )


# ----------------------------------------------------------------------
# crash-point-coverage
# ----------------------------------------------------------------------
CRASH_PATH = "src/repro/core/persistence.py"


def test_unhit_durable_write_detected():
    findings = flow(
        """
        def save(path, payload):
            with open(path, "wb") as handle:
                handle.write(payload)
        """,
        path=CRASH_PATH,
    )
    assert rules_of(findings) == ["crash-point-coverage"]


def test_hit_before_write_is_clean():
    assert (
        flow(
            """
            def save(path, payload, crash_point):
                crash_point.hit("save")
                with open(path, "wb") as handle:
                    handle.write(payload)
            """,
            path=CRASH_PATH,
        )
        == []
    )


def test_guarded_hit_idiom_counts_as_coverage():
    assert (
        flow(
            """
            def save(self, data):
                if self.crash_point is not None:
                    self.crash_point.hit("write")
                self._file.write(data)
            """,
            path=CRASH_PATH,
        )
        == []
    )


def test_hit_via_helper_counts_as_coverage():
    assert (
        flow(
            """
            def _crash_hit(crash_point, context):
                if crash_point is not None:
                    crash_point.hit(context)

            def save(path, payload, crash_point):
                _crash_hit(crash_point, "save")
                with open(path, "wb") as handle:
                    handle.write(payload)
            """,
            path=CRASH_PATH,
        )
        == []
    )


def test_hit_on_only_one_branch_detected():
    findings = flow(
        """
        def save(path, payload, crash_point, fast):
            if not fast:
                crash_point.hit("save")
            with open(path, "wb") as handle:
                handle.write(payload)
        """,
        path=CRASH_PATH,
    )
    assert rules_of(findings) == ["crash-point-coverage"]


def test_delegated_helper_rescued_when_all_callers_hit():
    assert (
        flow(
            """
            import shutil

            def _prune(paths):
                for path in paths:
                    shutil.rmtree(path, ignore_errors=True)

            def commit(paths, crash_point):
                crash_point.hit("prune")
                _prune(paths)
            """,
            path=CRASH_PATH,
        )
        == []
    )


def test_delegated_helper_not_rescued_when_a_caller_skips_the_hit():
    findings = flow(
        """
        import shutil

        def _prune(paths):
            for path in paths:
                shutil.rmtree(path, ignore_errors=True)

        def commit(paths, crash_point):
            crash_point.hit("prune")
            _prune(paths)

        def sloppy(paths):
            _prune(paths)
        """,
        path=CRASH_PATH,
    )
    assert rules_of(findings) == ["crash-point-coverage"]


def test_rule_only_audits_durable_modules():
    assert (
        flow(
            """
            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)
            """,
            path="src/repro/obs/bench.py",
        )
        == []
    )


# ----------------------------------------------------------------------
# obs-isolation
# ----------------------------------------------------------------------
def test_obs_importing_storage_detected():
    findings = flow(
        """
        from repro.storage.iomodel import IOCostModel

        def snapshot():
            return IOCostModel()
        """,
        path="src/repro/obs/registry.py",
    )
    assert "obs-isolation" in rules_of(findings)


def test_obs_reaching_cost_accounting_detected():
    findings = flow(
        """
        from repro.obs.helpers import relay

        def publish(value):
            return relay(value)
        """,
        path="src/repro/obs/trace.py",
        **{
            "src/repro/obs/helpers.py": """
            def record_write(value):
                return value

            def relay(value):
                return record_write(value)
            """
        },
    )
    obs = [f for f in findings if f.rule == "obs-isolation"]
    assert obs and "record_write" in obs[0].message


def test_branching_on_metrics_state_detected():
    findings = flow(
        """
        from repro.obs import get_registry

        _REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
        _OBS_HITS = _REG.counter("unit.hits")

        def lookup(cache, key):
            if _OBS_HITS.value > 100:
                return None
            return cache[key]
        """
    )
    assert rules_of(findings) == ["obs-isolation"]
    assert "_OBS_HITS" in findings[0].message


def test_updating_metrics_without_branching_is_clean():
    assert (
        flow(
            """
            from repro.obs import get_registry

            _REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
            _OBS_HITS = _REG.counter("unit.hits")

            def lookup(cache, key):
                _OBS_HITS.value += 1
                return cache[key]
            """
        )
        == []
    )


def test_reporting_layer_may_branch_on_metrics():
    assert (
        flow(
            """
            from repro.obs import get_registry

            _REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
            _OBS_RUNS = _REG.counter("bench.runs")

            def report():
                if _OBS_RUNS.value:
                    return "ran"
                return "idle"
            """,
            path="src/repro/obs/bench.py",
        )
        == []
    )


# ----------------------------------------------------------------------
# shared-state
# ----------------------------------------------------------------------
def test_unannotated_module_dict_detected():
    findings = flow(
        """
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value
        """
    )
    assert rules_of(findings) == ["shared-state"]


def test_annotated_module_dict_is_clean_and_inventoried():
    report = analyze_sources(
        {
            "src/repro/core/unit.py": textwrap.dedent(
                """
                _CACHE = {}  # repro: guarded-by(_CACHE_LOCK)
                """
            )
        }
    )
    assert report.findings == []
    (entry,) = report.inventory
    assert entry.annotation == "guarded-by(_CACHE_LOCK)"
    assert "_CACHE" in format_inventory(report.inventory)


def test_read_only_annotation_contradicted_by_mutation():
    findings = flow(
        """
        TABLE = {"a": 1}  # repro: read-only

        def poison(key):
            TABLE[key] = 0
        """
    )
    assert rules_of(findings) == ["shared-state"]
    assert "read-only" in findings[0].message


def test_global_rebind_requires_annotation():
    findings = flow(
        """
        _MODE = None

        def set_mode(mode):
            global _MODE
            _MODE = mode
        """
    )
    assert rules_of(findings) == ["shared-state"]
    assert (
        flow(
            """
            _MODE = None  # repro: worker-local

            def set_mode(mode):
                global _MODE
                _MODE = mode
            """
        )
        == []
    )


def test_lru_cache_requires_annotation():
    findings = flow(
        """
        from functools import lru_cache

        @lru_cache(maxsize=None)
        def codec(arity):
            return object()
        """
    )
    assert rules_of(findings) == ["shared-state"]


def test_cache_attribute_mutated_outside_init_detected():
    findings = flow(
        """
        class Codec:
            def __init__(self):
                self._struct_cache = {}

            def lookup(self, key):
                value = self._struct_cache.get(key)
                if value is None:
                    value = build(key)
                    self._struct_cache[key] = value
                return value
        """
    )
    assert rules_of(findings) == ["shared-state"]


def test_dunder_assignments_are_exempt():
    assert flow('__all__ = ["a", "b"]\n') == []


def test_parse_annotations_grammar():
    annotations = parse_annotations(
        "a = {}  # repro: guarded-by(Reg._lock)\n"
        "b = 0  # repro: worker-local\n"
        "c = {}  # repro: read-only\n"
        "d = {}  # unrelated comment\n"
    )
    assert annotations[1].kind == "guarded-by"
    assert annotations[1].detail == "Reg._lock"
    assert annotations[2].kind == "worker-local"
    assert annotations[3].kind == "read-only"
    assert 4 not in annotations


# ----------------------------------------------------------------------
# acceptance mutants: seeded regressions in REAL sources
# ----------------------------------------------------------------------
def read_src(rel):
    with open(os.path.join(SRC, rel), "r", encoding="utf-8") as handle:
        return handle.read()


def test_mutant_deleted_unpin_in_rtree_is_caught():
    source = read_src("repro/rtree/tree.py")
    mutated = source.replace("self._release(page)", "pass")
    assert mutated != source
    findings = analyze_sources({"src/repro/rtree/tree.py": mutated})
    assert "pin-balance" in rules_of(findings.findings)


def test_mutant_removed_crash_hit_in_persistence_is_caught():
    source = read_src("repro/core/persistence.py")
    mutated = source.replace("_crash_hit(", "_noop_hit(").replace(
        "def _noop_hit(", "def _crash_hit("  # keep the def; gut the calls
    )
    # also neutralize the gutted helper so nothing hits
    mutated = mutated.replace("crash_point.hit(context)", "pass")
    assert mutated != source
    findings = analyze_sources(
        {"src/repro/core/persistence.py": mutated}
    )
    assert "crash-point-coverage" in rules_of(findings.findings)


def test_mutant_obs_calling_storage_is_caught():
    source = read_src("repro/obs/registry.py")
    mutated = source.replace(
        '"""', '"""', 1
    )  # no-op anchor; the real mutation is the import below
    mutated = (
        "from repro.storage.iomodel import IOCostModel\n" + mutated
    )
    findings = analyze_sources({"src/repro/obs/registry.py": mutated})
    assert "obs-isolation" in rules_of(findings.findings)


def test_mutant_unannotated_module_dict_is_caught():
    source = read_src("repro/storage/codec.py")
    mutated = source + "\n_MUTANT_CACHE = {}\n"
    findings = analyze_sources({"src/repro/storage/codec.py": mutated})
    shared = [
        f for f in findings.findings if f.rule == "shared-state"
    ]
    assert any("_MUTANT_CACHE" in f.message for f in shared)


# ----------------------------------------------------------------------
# the tree at HEAD is clean modulo the committed baseline
# ----------------------------------------------------------------------
def test_src_tree_is_flow_clean_modulo_baseline():
    report = analyze_paths([os.path.join(SRC, "repro")])
    baseline = load_baseline(
        os.path.join(REPO_ROOT, "tools", "flow-baseline.json")
    )
    fresh, suppressed = apply_baseline(report.findings, baseline)
    assert fresh == [], [f.format() for f in fresh]
    assert suppressed == len(report.findings)
    # the audit inventory covers the known shared-state surfaces
    names = {entry.name for entry in report.inventory}
    assert {"_REG", "_REGISTRY", "_POOLS"} <= names
    assert all(
        entry.annotation is not None for entry in report.inventory
    )


# ----------------------------------------------------------------------
# baseline machinery
# ----------------------------------------------------------------------
def test_fingerprint_ignores_line_numbers_and_path_prefixes():
    findings = flow(
        """
        def f(pool, pid):
            page = pool.fetch_page(pid)
            return page.data
        """
    )
    shifted = flow(
        """
        # a new comment shifts every line
        def f(pool, pid):
            page = pool.fetch_page(pid)
            return page.data
        """,
        path="/elsewhere/checkout/src/repro/core/unit.py",
    )
    assert finding_fingerprint(findings[0]) == finding_fingerprint(
        shifted[0]
    )
    assert canonical_path(findings[0].path) == "repro/core/unit.py"


def test_apply_and_load_baseline_roundtrip(tmp_path):
    findings = flow(
        """
        def f(pool, pid):
            page = pool.fetch_page(pid)
            return page.data
        """
    )
    payload = findings_payload(findings)
    assert payload["schema_version"] == 1
    (entry,) = payload["findings"]
    assert set(entry) == {"rule", "path", "line", "message"}

    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps(payload))
    baseline = load_baseline(str(baseline_file))
    fresh, suppressed = apply_baseline(findings, baseline)
    assert fresh == [] and suppressed == 1

    fresh, suppressed = apply_baseline(findings, set())
    assert len(fresh) == 1 and suppressed == 0


def test_load_baseline_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"schema_version": 99, "findings": []}')
    with pytest.raises(ValueError):
        load_baseline(str(bad))


def test_flow_rule_registry_is_complete():
    assert set(FLOW_RULES) == {
        "pin-balance",
        "crash-point-coverage",
        "obs-isolation",
        "shared-state",
    }
