"""Tests for the statement-level CFG builder."""

import ast
import glob
import os
import textwrap

import pytest

from repro.analysis.cfg import (
    build_cfg,
    collect_statements,
    iter_functions,
    walk_statement,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def cfg_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = dict(iter_functions(tree))
    if name is None:
        (name,) = [q for q in funcs if "." not in q]
    return build_cfg(funcs[name]), funcs[name]


def node_for(cfg, needle):
    """The CFG node whose statement's source contains ``needle``."""
    for node in cfg.nodes:
        if node.stmt is not None and needle in ast.unparse(node.stmt).split(
            "\n"
        )[0]:
            return node
    raise AssertionError(f"no CFG node matching {needle!r}")


def reachable_from(cfg, start, skip=frozenset()):
    """Node indices reachable from ``start`` without entering ``skip``."""
    seen = set()
    frontier = [start]
    while frontier:
        idx = frontier.pop()
        for succ in cfg.node(idx).succs:
            if succ in seen or succ in skip:
                continue
            seen.add(succ)
            frontier.append(succ)
    return seen


def must_pass_through(cfg, start, gate):
    """True when every path start -> exit crosses ``gate``."""
    return cfg.exit not in reachable_from(cfg, start, skip={gate})


# ----------------------------------------------------------------------
# edge semantics
# ----------------------------------------------------------------------
def test_straight_line_chain():
    cfg, _ = cfg_of(
        """
        def f():
            a = 1
            b = 2
            return a + b
        """
    )
    a, b, ret = (node_for(cfg, s) for s in ("a = 1", "b = 2", "return"))
    assert cfg.node(cfg.entry).succs == [a.index]
    assert a.succs == [b.index]
    assert b.succs == [ret.index]
    assert ret.succs == [cfg.exit]


def test_branch_rejoins_at_successor():
    cfg, _ = cfg_of(
        """
        def f(x):
            if x:
                a = 1
            else:
                b = 2
            c = 3
        """
    )
    c = node_for(cfg, "c = 3")
    assert c.index in node_for(cfg, "a = 1").succs
    assert c.index in node_for(cfg, "b = 2").succs
    # the If header only enters its arms, never skips to c directly
    header = node_for(cfg, "if x")
    assert c.index not in header.succs


def test_early_return_leaves_later_code_unreachable():
    cfg, _ = cfg_of(
        """
        def f(x):
            if x:
                return 1
            y = 2
            return y
        """
    )
    ret = node_for(cfg, "return 1")
    assert ret.succs == [cfg.exit]
    # y = 2 is reachable only via the If fall-through, not after return 1
    assert node_for(cfg, "y = 2").index not in reachable_from(
        cfg, ret.index
    )


def test_loop_back_edge_and_exit():
    cfg, _ = cfg_of(
        """
        def f(n):
            while n:
                n -= 1
            return n
        """
    )
    header = node_for(cfg, "while n")
    body = node_for(cfg, "n -= 1")
    assert header.index in body.succs  # back edge
    assert node_for(cfg, "return n").index in header.succs


def test_while_true_has_no_fallthrough_exit():
    cfg, _ = cfg_of(
        """
        def f(n):
            while True:
                if n:
                    break
            return n
        """
    )
    header = node_for(cfg, "while True")
    ret = node_for(cfg, "return n")
    # the loop is only left via break; the header never falls through
    assert ret.index not in header.succs
    assert ret.index in node_for(cfg, "break").succs


def test_continue_targets_loop_header():
    cfg, _ = cfg_of(
        """
        def f(xs):
            for x in xs:
                if x:
                    continue
                y = x
            return 0
        """
    )
    assert node_for(cfg, "for x in xs").index in node_for(
        cfg, "continue"
    ).succs


def test_return_routes_through_finally():
    cfg, _ = cfg_of(
        """
        def f(p):
            try:
                return p
            finally:
                release(p)
        """
    )
    ret = node_for(cfg, "return p")
    fin = node_for(cfg, "release(p)")
    assert must_pass_through(cfg, ret.index, fin.index)


def test_raise_reaches_handler_then_continues():
    cfg, _ = cfg_of(
        """
        def f(x):
            try:
                raise ValueError(x)
            except ValueError:
                x = 0
            return x
        """
    )
    raiser = node_for(cfg, "raise ValueError")
    handler_stmt = node_for(cfg, "x = 0")
    assert handler_stmt.index in raiser.succs
    assert node_for(cfg, "return x").index in handler_stmt.succs


def test_uncaught_raise_routes_through_finally_to_exit():
    cfg, _ = cfg_of(
        """
        def f(p):
            try:
                raise RuntimeError("boom")
            finally:
                release(p)
        """
    )
    raiser = node_for(cfg, "raise RuntimeError")
    fin = node_for(cfg, "release(p)")
    assert must_pass_through(cfg, raiser.index, fin.index)
    assert cfg.exit in reachable_from(cfg, raiser.index)


def test_yield_abandonment_routes_through_finally():
    cfg, _ = cfg_of(
        """
        def gen(p):
            try:
                yield p
                after = 1
            finally:
                release(p)
        """
    )
    yielder = node_for(cfg, "yield p")
    fin = node_for(cfg, "release(p)")
    # a closed generator resumes at the yield and runs the finally
    assert must_pass_through(cfg, yielder.index, fin.index)


def test_break_inside_try_finally_runs_finally_first():
    cfg, _ = cfg_of(
        """
        def f(xs):
            for x in xs:
                try:
                    break
                finally:
                    cleanup(x)
            return 0
        """
    )
    brk = node_for(cfg, "break")
    fin = node_for(cfg, "cleanup(x)")
    ret = node_for(cfg, "return 0")
    assert brk.succs == [fin.index]
    assert ret.index in fin.succs


# ----------------------------------------------------------------------
# helpers: walk_statement / collect_statements
# ----------------------------------------------------------------------
def test_walk_statement_stays_shallow():
    stmt = ast.parse(
        textwrap.dedent(
            """
            if cond(a):
                body_call(b)
            """
        )
    ).body[0]
    names = {
        n.id for n in walk_statement(stmt) if isinstance(n, ast.Name)
    }
    assert "a" in names  # the header's own expressions are walked
    assert "b" not in names  # the body belongs to other CFG nodes


def test_collect_statements_skips_nested_bodies():
    tree = ast.parse(
        textwrap.dedent(
            """
            def outer():
                x = 1
                def inner():
                    y = 2
                return x
            """
        )
    )
    funcs = dict(iter_functions(tree))
    texts = [
        ast.unparse(s).split("\n")[0]
        for s in collect_statements(funcs["outer"])
    ]
    assert "x = 1" in texts
    assert any(t.startswith("def inner") for t in texts)
    assert "y = 2" not in texts  # inner's body is inner's CFG


# ----------------------------------------------------------------------
# the coverage property: every statement gets exactly one CFG node
# ----------------------------------------------------------------------
FIXTURES = [
    """
    def branchy(x):
        if x > 0:
            y = 1
        elif x < 0:
            y = -1
        else:
            y = 0
        return y
    """,
    """
    def loopy(xs):
        total = 0
        for x in xs:
            if x is None:
                continue
            if x < 0:
                break
            total += x
        else:
            total = -total
        while total > 10:
            total //= 2
        return total
    """,
    """
    def guarded(path):
        handle = acquire(path)
        try:
            data = handle.read()
            if not data:
                return None
            return parse(data)
        except ValueError:
            return None
        finally:
            handle.close()
    """,
    """
    def early(x):
        if not x:
            return 0
        if x == 1:
            raise ValueError(x)
        return x * 2
    """,
    """
    def gen(xs):
        for x in xs:
            try:
                yield x
            finally:
                note(x)
        yield from ()
    """,
    """
    def nested(x):
        def helper(y):
            return y + 1
        with open(x) as fh:
            return helper(len(fh.read()))
    """,
    """
    def matcher(cmd):
        match cmd:
            case "a":
                out = 1
            case _:
                out = 2
        return out
    """,
]


def assert_exactly_once(func):
    cfg = build_cfg(func)
    expected = sorted(id(s) for s in collect_statements(func))
    got = sorted(id(s) for s in cfg.statements())
    assert got == expected, (
        f"CFG of {func.name} covers {len(got)} statements, "
        f"AST has {len(expected)}"
    )
    assert len(set(got)) == len(got)


@pytest.mark.parametrize("source", FIXTURES, ids=lambda s: s.split()[1])
def test_exactly_once_on_fixtures(source):
    tree = ast.parse(textwrap.dedent(source))
    for _qual, func in iter_functions(tree):
        assert_exactly_once(func)


def test_exactly_once_over_entire_source_tree():
    """The property test of record: every statement of every function in
    src/repro appears in its CFG exactly once."""
    pattern = os.path.join(REPO_ROOT, "src", "repro", "**", "*.py")
    paths = sorted(glob.glob(pattern, recursive=True))
    assert len(paths) > 40
    checked = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=path)
        for _qual, func in iter_functions(tree):
            assert_exactly_once(func)
            checked += 1
    assert checked > 200
