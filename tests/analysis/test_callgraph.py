"""Tests for the heuristic intra-project call graph."""

import textwrap

from repro.analysis.callgraph import CallGraph, module_name_for_path


def graph_of(**sources):
    return CallGraph.from_sources(
        {
            f"src/repro/{name.replace('__', '/')}.py": textwrap.dedent(src)
            for name, src in sources.items()
        }
    )


def test_module_name_for_path():
    assert (
        module_name_for_path("src/repro/obs/trace.py") == "repro.obs.trace"
    )
    assert (
        module_name_for_path("/x/y/repro/storage/__init__.py")
        == "repro.storage"
    )
    assert module_name_for_path("scratch.py") == "scratch"


def test_local_call_resolution():
    graph = graph_of(
        core__a="""
        def helper():
            return 1

        def top():
            return helper()
        """
    )
    assert graph.callees("repro.core.a:top") == {"repro.core.a:helper"}


def test_from_import_resolution():
    graph = graph_of(
        core__a="""
        def provide():
            return 1
        """,
        core__b="""
        from repro.core.a import provide

        def consume():
            return provide()
        """,
    )
    assert graph.callees("repro.core.b:consume") == {
        "repro.core.a:provide"
    }


def test_method_calls_resolve_receiver_agnostically_within_imports():
    graph = graph_of(
        core__a="""
        class Widget:
            def poke(self):
                return 1
        """,
        core__b="""
        from repro.core.a import Widget

        def driver(w):
            return w.poke()
        """,
        core__c="""
        class Unrelated:
            def poke(self):
                return 2

        def other(u):
            return u.poke()
        """,
    )
    # b imports from a: the bare-name edge lands on a's Widget.poke but
    # NOT on c's Unrelated.poke (c is invisible to b)
    assert graph.callees("repro.core.b:driver") == {
        "repro.core.a:Widget.poke"
    }
    # c sees only its own module
    assert graph.callees("repro.core.c:other") == {
        "repro.core.c:Unrelated.poke"
    }


def test_stdlib_attribute_calls_are_external():
    graph = graph_of(
        core__a="""
        import os

        def move(a, b):
            os.rename(a, b)
        """
    )
    assert graph.callees("repro.core.a:move") == set()
    info = graph.functions["repro.core.a:move"]
    assert [site.target for site in info.calls] == ["ext:os.rename"]


def test_nested_function_calls_not_attributed_to_parent():
    graph = graph_of(
        core__a="""
        def inner_target():
            return 1

        def outer():
            def closure():
                return inner_target()
            return closure
        """
    )
    assert graph.callees("repro.core.a:outer") == set()
    assert graph.callees("repro.core.a:outer.closure") == {
        "repro.core.a:inner_target"
    }


def test_reaches_returns_call_chain():
    graph = graph_of(
        obs__r="""
        from repro.storage.io import middle

        def start():
            return middle()
        """,
        storage__io="""
        def record_write():
            return 0

        def middle():
            return record_write()
        """,
    )
    chain = graph.reaches(
        "repro.obs.r:start",
        lambda info: info.simple_name == "record_write",
    )
    assert chain == [
        "repro.storage.io:middle",
        "repro.storage.io:record_write",
    ]
    assert (
        graph.reaches(
            "repro.storage.io:record_write",
            lambda info: info.simple_name == "start",
        )
        is None
    )


def test_callers_of_and_transitive_closure():
    graph = graph_of(
        core__a="""
        def sink():
            return 0

        def direct():
            return sink()

        def indirect():
            return direct()

        def bystander():
            return 1
        """
    )
    callers = {
        info.qualname for info in graph.callers_of("repro.core.a:sink")
    }
    assert callers == {"repro.core.a:direct"}
    closed = graph.transitive_closure_matching({"repro.core.a:sink"})
    assert closed == {
        "repro.core.a:sink",
        "repro.core.a:direct",
        "repro.core.a:indirect",
    }


def test_syntax_error_files_are_skipped():
    graph = CallGraph.from_sources(
        {
            "src/repro/core/bad.py": "def broken(:\n",
            "src/repro/core/ok.py": "def fine():\n    return 1\n",
        }
    )
    assert "repro.core.ok:fine" in graph.functions
    assert all("bad" not in q for q in graph.functions)
