"""Tests for the repo-specific AST lint rules and the tools/lint.py runner."""

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis.flowrules import apply_baseline, load_baseline
from repro.analysis.lint import (
    RULES,
    LintFinding,
    format_findings,
    is_test_path,
    lint_paths,
    lint_source,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))
LINT_RUNNER = os.path.join(REPO_ROOT, "tools", "lint.py")


def rules_of(findings):
    return [finding.rule for finding in findings]


def lint(snippet, path="repro/somewhere.py"):
    return lint_source(textwrap.dedent(snippet), path)


# ----------------------------------------------------------------------
# runtime-assert
# ----------------------------------------------------------------------
def test_assert_flagged_in_production_code():
    findings = lint("""
        def f(x):
            assert x > 0
            return x
    """)
    assert rules_of(findings) == ["runtime-assert"]
    assert findings[0].line == 3


def test_assert_allowed_in_tests():
    source = "def test_f():\n    assert 1 + 1 == 2\n"
    assert lint_source(source, "tests/test_f.py") == []
    assert lint_source(source, "tests/sub/conftest.py") == []
    assert is_test_path("tests/analysis/test_lint.py")
    assert not is_test_path("src/repro/analysis/lint.py")


def test_raise_not_flagged():
    assert lint("""
        def f(x):
            if x <= 0:
                raise ValueError("x")
            return x
    """) == []


# ----------------------------------------------------------------------
# direct-disk-read
# ----------------------------------------------------------------------
def test_direct_disk_read_flagged():
    findings = lint("""
        def f(pool, page_id):
            return pool.disk.read_page(page_id)
    """)
    assert rules_of(findings) == ["direct-disk-read"]


def test_bare_disk_name_flagged():
    findings = lint("""
        def f(disk):
            return disk.read_page(0)
    """)
    assert rules_of(findings) == ["direct-disk-read"]


def test_pool_fetch_not_flagged():
    assert lint("""
        def f(pool, page_id):
            return pool.fetch_page(page_id)
    """) == []


def test_buffer_pool_module_is_exempt():
    snippet = """
        def fetch(self, page_id):
            return self.disk.read_page(page_id)
    """
    assert lint(snippet, "src/repro/storage/buffer.py") == []
    assert rules_of(lint(snippet, "src/repro/core/engine.py")) == [
        "direct-disk-read"
    ]


# ----------------------------------------------------------------------
# float-equality
# ----------------------------------------------------------------------
def test_float_literal_equality_flagged():
    findings = lint("""
        def f(total):
            return total == 1.0
    """)
    assert rules_of(findings) == ["float-equality"]


def test_float_call_inequality_flagged():
    findings = lint("""
        def f(row):
            return float(row[0]) != 0.5
    """)
    assert rules_of(findings) == ["float-equality"]


def test_float_ordering_not_flagged():
    assert lint("""
        def f(fill):
            return 0.0 < fill <= 1.0
    """) == []


def test_int_equality_not_flagged():
    assert lint("""
        def f(n):
            return n == 42
    """) == []


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------
def test_mutable_default_flagged():
    findings = lint("""
        def f(items=[]):
            return items
    """)
    assert rules_of(findings) == ["mutable-default"]


def test_mutable_kwonly_and_constructor_defaults_flagged():
    findings = lint("""
        def f(*, cache={}, pool=set()):
            return cache, pool
    """)
    assert rules_of(findings) == ["mutable-default", "mutable-default"]


def test_none_default_not_flagged():
    assert lint("""
        def f(items=None, name="x", count=0):
            return items
    """) == []


# ----------------------------------------------------------------------
# magic-page-size
# ----------------------------------------------------------------------
def test_magic_page_size_flagged():
    findings = lint("""
        def f():
            return bytearray(4096)
    """)
    assert rules_of(findings) == ["magic-page-size"]


def test_constants_module_is_exempt():
    snippet = "PAGE_SIZE = 4096\n"
    assert lint(snippet, "src/repro/constants.py") == []
    assert rules_of(lint(snippet, "src/repro/storage/page.py")) == [
        "magic-page-size"
    ]


def test_other_literals_not_flagged():
    assert lint("""
        def f():
            return 4095 + 4097
    """) == []


# ----------------------------------------------------------------------
# struct-in-loop
# ----------------------------------------------------------------------
def test_struct_pack_in_for_loop_flagged():
    findings = lint("""
        def f(codec, rows, out):
            for row in rows:
                out += codec.pack(*row)
    """)
    assert rules_of(findings) == ["struct-in-loop"]


def test_struct_unpack_from_in_while_loop_flagged():
    findings = lint("""
        import struct
        def f(raw):
            offset = 0
            while offset < len(raw):
                yield struct.unpack_from("<qd", raw, offset)
                offset += 16
    """)
    assert rules_of(findings) == ["struct-in-loop"]


def test_struct_call_in_comprehension_flagged():
    findings = lint("""
        def f(item, rows):
            return [item.unpack(chunk) for chunk in rows]
    """)
    assert rules_of(findings) == ["struct-in-loop"]


def test_struct_call_outside_loop_not_flagged():
    assert lint("""
        def f(codec, rows):
            return codec.pack(*[v for row in rows for v in row])
    """) == []


def test_iter_unpack_in_loop_not_flagged():
    assert lint("""
        def f(item, raw):
            for page in raw:
                yield from item.iter_unpack(page)
    """) == []


def test_nested_function_in_loop_body_still_flagged():
    findings = lint("""
        def f(codec, pages):
            for page in pages:
                def decode():
                    return codec.unpack(page)
                yield decode()
    """)
    assert rules_of(findings) == ["struct-in-loop"]


# ----------------------------------------------------------------------
# sequential-fetch-loop
# ----------------------------------------------------------------------
def test_fetch_page_in_range_loop_flagged():
    findings = lint("""
        def f(pool, first, count):
            for page_id in range(first, first + count):
                pool.fetch_page(page_id)
    """)
    assert rules_of(findings) == ["sequential-fetch-loop"]


def test_fetch_page_in_nested_range_loop_flagged():
    findings = lint("""
        def f(pool, runs):
            for run in runs:
                for idx in range(run.first, run.last + 1):
                    page = pool.fetch_page(run.page_ids[idx])
                    yield page
    """)
    assert rules_of(findings) == ["sequential-fetch-loop"]


def test_fetch_page_over_explicit_ids_not_flagged():
    # Iterating an arbitrary id collection is not the sequential-range
    # pattern the read-ahead helper replaces.
    assert lint("""
        def f(pool, page_ids):
            for page_id in page_ids:
                pool.fetch_page(page_id)
    """) == []


def test_fetch_page_outside_loop_not_flagged():
    assert lint("""
        def f(pool, page_id):
            return pool.fetch_page(page_id)
    """) == []


def test_fetch_page_after_range_loop_not_flagged():
    assert lint("""
        def f(pool, n):
            total = 0
            for i in range(n):
                total += i
            return pool.fetch_page(total)
    """) == []


def test_buffer_module_exempt_from_fetch_loop_rule():
    snippet = """
        def prefetch(self, first, count):
            for page_id in range(first, first + count):
                self.fetch_page(page_id)
    """
    assert lint(snippet, "src/repro/storage/buffer.py") == []
    assert rules_of(lint(snippet, "src/repro/rtree/tree.py")) == [
        "sequential-fetch-loop"
    ]


# ----------------------------------------------------------------------
# leaf-entry-loop (path-restricted to the query layer + rtree/tree.py)
# ----------------------------------------------------------------------
def test_leaf_entry_loop_flagged_in_tree():
    findings = lint("""
        def search(leaf, rect):
            for point in leaf.points:
                rect.contains_point(point)
    """, "src/repro/rtree/tree.py")
    assert rules_of(findings) == ["leaf-entry-loop"]
    assert ".points" in findings[0].message


def test_leaf_entry_loop_sees_through_zip_and_comprehensions():
    snippet = """
        def search(node):
            return [v for p, v in zip(node.points, node.values)]
    """
    findings = lint(snippet, "src/repro/query/batch.py")
    assert rules_of(findings) == ["leaf-entry-loop"]


def test_leaf_entry_loop_restricted_to_query_paths():
    snippet = """
        def pack(leaf):
            for point in leaf.points:
                encode(point)
    """
    # Packers/codecs legitimately walk entries row by row.
    assert lint(snippet, "src/repro/rtree/pack.py") == []
    assert lint(snippet, "src/repro/storage/codec.py") == []


def test_leaf_entry_loop_ignores_dict_values_calls():
    # ``d.values()`` is a method call, not a leaf column read.
    assert lint("""
        def f(d):
            for v in d.values():
                use(v)
    """, "src/repro/rtree/tree.py") == []


# ----------------------------------------------------------------------
# suppression + registry + formatting
# ----------------------------------------------------------------------
def test_inline_suppression():
    findings = lint("""
        def f():
            return bytearray(4096)  # lint: ignore[magic-page-size]
    """)
    assert findings == []


def test_suppression_is_rule_specific():
    findings = lint("""
        def f(x):
            assert x  # lint: ignore[magic-page-size]
    """)
    assert rules_of(findings) == ["runtime-assert"]


def test_every_rule_is_registered():
    # Linted as rtree/tree.py so the path-restricted leaf-entry-loop
    # rule is in play alongside the everywhere rules.
    sample = """
        def f(x, items=[]):
            assert x
            for item in items:
                x.codec.unpack(item)
            for page_id in range(8):
                x.pool.fetch_page(page_id)
            for point in x.leaf.points:
                x.use(point)
            if float(x) == 1.0:
                return x.disk.read_page(4096)
    """
    findings = lint(sample, "src/repro/rtree/tree.py")
    assert set(rules_of(findings)) == set(RULES)


def test_syntax_error_yields_structured_finding():
    findings = lint_source("def broken(:\n", "bad.py")
    assert rules_of(findings) == ["syntax-error"]
    assert "does not parse" in findings[0].message


def test_format_findings():
    finding = LintFinding("runtime-assert", "a.py", 3, 4, "boom")
    text = format_findings([finding])
    assert "a.py:3:4: [runtime-assert] boom" in text
    assert "1 finding(s)" in text
    assert format_findings([]) == "0 findings"


# ----------------------------------------------------------------------
# the runner: zero on src/ at HEAD, non-zero on a seeded violation
# ----------------------------------------------------------------------
def test_src_tree_is_lint_clean():
    # The committed lint baseline accepts the tree's deliberate scalar
    # fallbacks (leaf-entry-loop); nothing new may appear beyond it.
    findings = lint_paths([os.path.join(REPO_ROOT, "src")])
    baseline = load_baseline(
        os.path.join(REPO_ROOT, "tools", "lint-baseline.json")
    )
    fresh, suppressed = apply_baseline(findings, baseline)
    assert fresh == []
    assert suppressed == len(findings)


def test_runner_exits_zero_on_clean_src():
    proc = subprocess.run(
        [sys.executable, LINT_RUNNER],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_runner_exits_nonzero_on_seeded_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x):\n    assert x\n    return 4096\n")
    proc = subprocess.run(
        [sys.executable, LINT_RUNNER, str(bad)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert "runtime-assert" in proc.stdout
    assert "magic-page-size" in proc.stdout


def test_runner_rejects_missing_path(tmp_path):
    proc = subprocess.run(
        [sys.executable, LINT_RUNNER, str(tmp_path / "nope.py")],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 2
    assert "no such path" in proc.stderr


# ----------------------------------------------------------------------
# the runner's flow-mode flags
# ----------------------------------------------------------------------
def test_runner_list_rules_includes_flow_rules():
    proc = subprocess.run(
        [sys.executable, LINT_RUNNER, "--list-rules"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0
    assert "pin-balance (flow):" in proc.stdout
    assert "crash-point-coverage (flow):" in proc.stdout
    assert "obs-isolation (flow):" in proc.stdout
    assert "shared-state (flow):" in proc.stdout


def test_runner_flow_is_clean_modulo_baseline():
    proc = subprocess.run(
        [sys.executable, LINT_RUNNER, "--flow"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "2 baselined" in proc.stdout
    assert "shared-state inventory" in proc.stdout


def test_runner_json_format(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(pool, pid):\n"
        "    page = pool.fetch_page(pid)\n"
        "    return page.data\n"
    )
    out = tmp_path / "findings.json"
    proc = subprocess.run(
        [
            sys.executable, LINT_RUNNER, str(bad),
            "--flow", "--no-baseline", "--format", "json",
            "--out", str(out),
        ],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["schema_version"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "pin-balance"
    assert set(finding) == {"rule", "path", "line", "message"}
    assert json.loads(out.read_text()) == payload


def test_runner_write_baseline_roundtrip(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(pool, pid):\n"
        "    page = pool.fetch_page(pid)\n"
        "    return page.data\n"
    )
    baseline = tmp_path / "baseline.json"
    proc = subprocess.run(
        [
            sys.executable, LINT_RUNNER, str(bad),
            "--write-baseline", str(baseline),
        ],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0
    assert "wrote 1 finding(s)" in proc.stdout
    proc = subprocess.run(
        [
            sys.executable, LINT_RUNNER, str(bad),
            "--flow", "--baseline", str(baseline),
        ],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "1 baselined" in proc.stdout
