"""Tests for the structural verifier (cubetree fsck).

Each corruption test takes a freshly packed tree, rewrites one page's
persisted bytes, and asserts the verifier reports exactly the expected
structured finding.
"""

import pytest

from repro.analysis import fsck
from repro.analysis.fsck import (
    FsckReport,
    check_cubetree,
    check_tree,
    debug_checks_enabled,
    set_debug_checks,
    verify_tree,
)
from repro.errors import IntegrityError
from repro.relational.view import ViewDefinition
from repro.rtree.geometry import Rect
from repro.rtree.merge import merge_pack
from repro.rtree.node import RInteriorNode, RLeafNode, leaf_capacity
from repro.rtree.packing import PackedRun, pack_rtree
from repro.rtree.tree import RTree
from repro.core.cubetree import Cubetree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

DIMS = 2
CAP1 = leaf_capacity(1, 1)  # arity-1 leaves (254 at 4 KiB pages)
CAP2 = leaf_capacity(2, 1)  # arity-2 leaves


def make_pool(capacity=2048):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def packed_tree(pool, n1=2 * CAP1 + 92, n2=CAP2 + 31):
    """A 2-d packed tree: view 1 (arity 1) then view 2 (arity 2)."""
    run1 = PackedRun(
        1, 1, 1, [((i,), (1.0,)) for i in range(1, n1 + 1)]
    )
    entries2 = [
        ((x, y), (1.0,))
        for y in range(1, 21)
        for x in range(1, n2 // 20 + 2)
    ][:n2]
    run2 = PackedRun(2, 2, 1, entries2)
    return pack_rtree(pool, DIMS, [run1, run2])


def rewrite_leaf(pool, page_id, mutate):
    """Mutate one persisted leaf page in place."""
    page = pool.fetch_page(page_id)
    node = RLeafNode.from_bytes(bytes(page.data))
    mutate(node)
    page.data[:] = node.to_bytes()
    page.cached_obj = None
    pool.unpin_page(page_id, dirty=True)


def rewrite_interior(pool, page_id, mutate):
    """Mutate one persisted interior page in place."""
    page = pool.fetch_page(page_id)
    node = RInteriorNode.from_bytes(bytes(page.data))
    mutate(node)
    page.data[:] = node.to_bytes()
    page.cached_obj = None
    pool.unpin_page(page_id, dirty=True)


# ----------------------------------------------------------------------
# clean trees
# ----------------------------------------------------------------------
def test_fresh_packed_tree_is_clean():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    report = check_tree(tree)
    assert report.ok
    assert report.codes() == []
    assert report.trees_checked == 1
    assert report.leaves_checked == len(tree.leaf_page_ids)
    assert report.entries_checked == tree.count
    assert report.pages_checked > report.leaves_checked  # interiors too


def test_empty_tree_is_clean():
    _disk, pool = make_pool()
    tree = pack_rtree(pool, DIMS, [])
    assert check_tree(tree).ok


def test_dynamic_tree_passes_structural_checks_only():
    _disk, pool = make_pool()
    tree = RTree(pool, 2)
    for i in range(400):
        tree.insert((i * 7 % 101 + 1, i * 13 % 89 + 1), (1.0,))
    # Guttman trees have ~50-70% utilization: the packing checks would
    # (correctly) scream, the structural half must stay green.
    assert check_tree(tree, packed=False).ok
    assert not check_tree(tree, packed=True).ok


def test_report_merge_accumulates():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    total = FsckReport()
    total.merge(check_tree(tree))
    total.merge(check_tree(tree))
    assert total.trees_checked == 2
    assert total.entries_checked == 2 * tree.count


# ----------------------------------------------------------------------
# corruption fixtures — each must produce exactly the expected finding
# ----------------------------------------------------------------------
def test_underfilled_leaf_is_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    first_leaf = tree.leaf_page_ids[0]

    def chop(node):
        del node.points[-10:]
        del node.values[-10:]

    rewrite_leaf(pool, first_leaf, chop)
    tree.count -= 10  # keep the counter honest: isolate the fill check
    report = check_tree(tree)
    assert report.codes() == [fsck.LEAF_UNDERFILLED]
    violation = report.violations[0]
    assert violation.page_id == first_leaf
    assert violation.view_id == 1
    assert str(CAP1) in violation.message


def test_interleaved_views_are_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    # View 1 occupies three leaves; relabel the middle one so the run is
    # broken in two by a foreign view.
    middle_leaf = tree.leaf_page_ids[1]

    def relabel(node):
        node.view_id = 9

    rewrite_leaf(pool, middle_leaf, relabel)
    report = check_tree(tree)
    assert report.violations
    assert set(report.codes()) == {fsck.VIEW_INTERLEAVED}
    assert any(v.view_id == 1 for v in report.violations)


def test_broken_interior_mbr_is_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    root = tree.root_page_id
    assert root not in tree.leaf_page_ids  # fixture needs an interior root

    def shrink_first_child(node):
        mbr = node.mbrs[0]
        node.mbrs[0] = Rect(
            mbr.lows, (mbr.highs[0] - 1,) + mbr.highs[1:]
        )

    rewrite_interior(pool, root, shrink_first_child)
    report = check_tree(tree)
    assert report.violations
    assert set(report.codes()) == {fsck.MBR_NOT_CONTAINED}


def test_count_mismatch_is_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    tree.count += 5
    report = check_tree(tree)
    assert report.codes() == [fsck.COUNT_MISMATCH]


def test_nonpositive_coordinate_is_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    last_leaf = tree.leaf_page_ids[-1]

    def zero_out(node):
        node.points[-1] = (0,) * len(node.points[-1])

    rewrite_leaf(pool, last_leaf, zero_out)
    report = check_tree(tree)
    assert fsck.NONPOSITIVE_COORD in report.codes()


def test_verify_tree_raises_integrity_error():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    rewrite_leaf(pool, tree.leaf_page_ids[1], lambda n: setattr(n, "view_id", 9))
    with pytest.raises(IntegrityError, match="view-interleaved"):
        verify_tree(tree, context="test")
    # The context string must survive into the error message.
    with pytest.raises(IntegrityError, match="test:"):
        verify_tree(tree, context="test")


# ----------------------------------------------------------------------
# cubetree-level checks (expected view shapes)
# ----------------------------------------------------------------------
def cubetree_fixture(pool):
    views = [
        ViewDefinition("V_a", ("a",)),
        ViewDefinition("V_ab", ("a", "b")),
    ]
    cube = Cubetree(pool, 2, views)
    cube.build({
        "V_a": [(i, float(i)) for i in range(1, 40)],
        "V_ab": [(i, j, 1.0) for i in range(1, 7) for j in range(1, 7)],
    })
    return cube


def test_check_cubetree_clean():
    _disk, pool = make_pool()
    cube = cubetree_fixture(pool)
    assert check_cubetree(cube).ok


def test_unregistered_view_is_reported():
    _disk, pool = make_pool()
    cube = cubetree_fixture(pool)
    # Both views fit one leaf each; relabel the arity-2 leaf as a view
    # id this Cubetree never registered.
    last_leaf = cube.tree.leaf_page_ids[-1]
    rewrite_leaf(pool, last_leaf, lambda n: setattr(n, "view_id", 5))
    report = check_cubetree(cube)
    assert fsck.UNKNOWN_VIEW in report.codes()


# ----------------------------------------------------------------------
# debug flag + merge-pack post-condition
# ----------------------------------------------------------------------
def test_debug_flag_defaults_off(monkeypatch):
    monkeypatch.delenv("REPRO_DEBUG_CHECKS", raising=False)
    set_debug_checks(None)
    assert not debug_checks_enabled()
    monkeypatch.setenv("REPRO_DEBUG_CHECKS", "1")
    assert debug_checks_enabled()
    monkeypatch.setenv("REPRO_DEBUG_CHECKS", "false")
    assert not debug_checks_enabled()


def test_merge_pack_verifies_under_debug_flag():
    _disk, pool = make_pool()
    tree = packed_tree(pool, n1=300, n2=100)
    delta = [
        PackedRun(1, 1, 1, [((i,), (2.0,)) for i in range(250, 351)])
    ]
    set_debug_checks(True)
    try:
        merged = merge_pack(pool, DIMS, tree, delta)
    finally:
        set_debug_checks(None)
    assert check_tree(merged).ok
    assert merged.count == 300 + 100 + 101 - 51  # 51 keys overlap


def test_cubetree_build_verifies_under_debug_flag():
    _disk, pool = make_pool()
    set_debug_checks(True)
    try:
        cube = cubetree_fixture(pool)
        cube.update({"V_a": [(100, 1.0)]})
    finally:
        set_debug_checks(None)
    assert check_cubetree(cube).ok


# ----------------------------------------------------------------------
# persisted leaf-run extents vs the actual leaf chain
# ----------------------------------------------------------------------
def test_fresh_extents_verify_clean():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    assert sorted(tree.view_extents) == [1, 2]
    assert check_tree(tree).ok


def test_tampered_extent_is_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    first, _last = tree.view_extents[1]
    # Catalog claims view 1's run ends one leaf early.
    tree.view_extents[1] = (first, tree.leaf_page_ids[0])
    report = check_tree(tree)
    assert report.codes() == [fsck.RUN_EXTENT_MISMATCH]
    assert report.violations[0].view_id == 1
    assert "disagrees" in report.violations[0].message


def test_extent_for_absent_run_is_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    tree.view_extents[7] = tree.view_extents[1]
    report = check_tree(tree)
    codes = report.codes()
    assert fsck.RUN_EXTENT_MISMATCH in codes
    assert any(
        v.view_id == 7 and "no run" in v.message
        for v in report.violations
    )


def test_run_without_recorded_extent_is_reported():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    del tree.view_extents[2]
    report = check_tree(tree)
    assert fsck.RUN_EXTENT_MISMATCH in report.codes()
    assert any(
        "no recorded extent" in v.message for v in report.violations
    )


def test_extents_absent_entirely_is_legacy_clean():
    """Dynamic builds and pre-extent checkpoints record nothing; the
    fast path falls back to the descent, so fsck stays green."""
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    tree.view_extents = {}
    assert check_tree(tree).ok


def test_interleaving_suppresses_extent_findings():
    """When the runs themselves are broken, every extent is wrong for
    the same root cause — only the interleaving must be reported."""
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    rewrite_leaf(
        pool, tree.leaf_page_ids[1], lambda n: setattr(n, "view_id", 9)
    )
    report = check_tree(tree)
    assert set(report.codes()) == {fsck.VIEW_INTERLEAVED}
