"""Smoke tests: every example script runs to completion.

The examples assert their own correctness internally (oracle checks), so
running them is a real integration test of the public API.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "grand total after refresh" in out


def test_worked_example():
    out = run_example("worked_example.py")
    assert "all values match the paper's tables" in out


def test_incremental_refresh():
    out = run_example("incremental_refresh.py")
    assert "day 7" in out
    assert "ok" in out


def test_rollup_drilldown():
    out = run_example("rollup_drilldown.py")
    assert "roll-up verified against the raw fact rows" in out


@pytest.mark.slow
def test_tpcd_comparison():
    out = run_example("tpcd_comparison.py", "0.004", timeout=400)
    assert "answers agree" in out
    assert "rows from both engines" in out


def test_advisor_and_persistence():
    out = run_example("advisor_and_persistence.py")
    assert "reopened database answers identically" in out
    assert "grand total verified" in out
