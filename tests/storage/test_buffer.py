"""Tests for the LRU buffer pool."""

import pytest

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool(capacity=3):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def test_new_page_is_pinned():
    _disk, pool = make_pool()
    page = pool.new_page()
    assert page.pin_count == 1
    pool.unpin_page(page.page_id)
    assert page.pin_count == 0


def test_fetch_hit_and_miss_accounting():
    disk, pool = make_pool()
    page = pool.new_page()
    page.data[0] = 42
    pool.unpin_page(page.page_id, dirty=True)
    pool.flush_all()
    pool.clear()

    fetched = pool.fetch_page(page.page_id)   # miss
    pool.unpin_page(fetched.page_id)
    again = pool.fetch_page(page.page_id)     # hit
    pool.unpin_page(again.page_id)
    assert pool.stats.misses == 1
    assert pool.stats.hits == 1
    assert again.data[0] == 42


def test_eviction_writes_back_dirty_pages():
    disk, pool = make_pool(capacity=2)
    first = pool.new_page()
    first.data[0] = 7
    pool.unpin_page(first.page_id, dirty=True)
    # Fill the pool past capacity to evict `first`.
    for _ in range(2):
        p = pool.new_page()
        pool.unpin_page(p.page_id, dirty=True)
    assert pool.stats.evictions >= 1
    assert disk.read_page(first.page_id)[0] == 7


def test_pinned_pages_survive_eviction():
    _disk, pool = make_pool(capacity=2)
    pinned = pool.new_page()
    other = pool.new_page()
    pool.unpin_page(other.page_id)
    extra = pool.new_page()  # must evict `other`, not `pinned`
    pool.unpin_page(extra.page_id)
    assert pool.fetch_page(pinned.page_id).pin_count == 2
    pool.unpin_page(pinned.page_id)
    pool.unpin_page(pinned.page_id)


def test_all_pinned_raises():
    _disk, pool = make_pool(capacity=1)
    pool.new_page()
    with pytest.raises(StorageError):
        pool.new_page()


def test_unpin_unknown_page_raises():
    _disk, pool = make_pool()
    with pytest.raises(StorageError):
        pool.unpin_page(99)


def test_double_unpin_raises():
    _disk, pool = make_pool()
    page = pool.new_page()
    pool.unpin_page(page.page_id)
    with pytest.raises(StorageError):
        pool.unpin_page(page.page_id)


def test_clear_with_pinned_page_raises():
    _disk, pool = make_pool()
    pool.new_page()
    with pytest.raises(StorageError):
        pool.clear()


def test_hit_ratio():
    _disk, pool = make_pool()
    assert pool.stats.hit_ratio == 0.0
    page = pool.new_page()
    pool.unpin_page(page.page_id)
    pool.fetch_page(page.page_id)
    pool.unpin_page(page.page_id)
    assert pool.stats.hit_ratio == 1.0


def test_eviction_drops_cached_obj():
    _disk, pool = make_pool(capacity=1)
    page = pool.new_page()
    page.cached_obj = object()
    pool.unpin_page(page.page_id)
    other = pool.new_page()
    pool.unpin_page(other.page_id)
    refetched = pool.fetch_page(page.page_id)
    assert refetched.cached_obj is None
    pool.unpin_page(page.page_id)


# ----------------------------------------------------------------------
# 2Q scan resistance: probation, promotion, protection, read-ahead
# ----------------------------------------------------------------------
def _flushed_pages(pool, n):
    """Allocate n pages, write them out, and cold-start the pool."""
    ids = []
    for i in range(n):
        page = pool.new_page()
        page.data[0] = i + 1
        pool.unpin_page(page.page_id, dirty=True)
        ids.append(page.page_id)
    pool.flush_all()
    pool.clear()
    return ids


def test_scan_fetch_admits_to_probation():
    _disk, pool = make_pool(capacity=8)
    (page_id,) = _flushed_pages(pool, 1)
    pool.fetch_page(page_id, scan=True)
    pool.unpin_page(page_id)
    assert page_id in pool._probation
    assert page_id not in pool._frames
    assert pool.stats.scan_admissions == 1


def test_point_hit_promotes_probationary_page():
    _disk, pool = make_pool(capacity=8)
    (page_id,) = _flushed_pages(pool, 1)
    pool.fetch_page(page_id, scan=True)
    pool.unpin_page(page_id)
    pool.fetch_page(page_id)  # genuine re-reference
    pool.unpin_page(page_id)
    assert page_id in pool._frames
    assert page_id not in pool._probation
    assert pool.stats.promotions == 1


def test_scan_hit_does_not_promote():
    """The demand fetch behind a read-ahead is one logical access, not
    evidence of reuse — the page must stay probationary."""
    _disk, pool = make_pool(capacity=8)
    (page_id,) = _flushed_pages(pool, 1)
    pool.fetch_page(page_id, scan=True)
    pool.unpin_page(page_id)
    pool.fetch_page(page_id, scan=True)
    pool.unpin_page(page_id)
    assert page_id in pool._probation
    assert pool.stats.promotions == 0


def test_scan_cannot_evict_protected_hot_set():
    """A long scan churns through probation while the point-access pages
    (the 'hot top-level pages') stay resident."""
    disk = DiskManager()
    pool = BufferPool(disk, capacity=4, eviction_batch=1)
    ids = _flushed_pages(pool, 12)
    hot = ids[:2]
    for page_id in hot:
        pool.fetch_page(page_id)  # protected-LRU residents
        pool.unpin_page(page_id)
    for page_id in ids[2:]:      # scan longer than the pool
        pool.fetch_page(page_id, scan=True)
        pool.unpin_page(page_id)
    assert all(page_id in pool._frames for page_id in hot)


def test_eviction_prefers_probation_over_lru():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=3, eviction_batch=1)
    ids = _flushed_pages(pool, 4)
    pool.fetch_page(ids[0])
    pool.unpin_page(ids[0])
    pool.fetch_page(ids[1], scan=True)
    pool.unpin_page(ids[1])
    pool.fetch_page(ids[2])
    pool.unpin_page(ids[2])
    pool.fetch_page(ids[3])  # pool full: must evict the scan page
    pool.unpin_page(ids[3])
    assert ids[1] not in pool._probation
    assert ids[0] in pool._frames


def test_protected_page_is_evicted_only_as_last_resort():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=3, eviction_batch=1)
    ids = _flushed_pages(pool, 5)
    pool.fetch_page(ids[0])
    pool.unpin_page(ids[0])
    pool.protect_page(ids[0])
    pool.fetch_page(ids[1])
    pool.unpin_page(ids[1])
    pool.fetch_page(ids[2])
    pool.unpin_page(ids[2])
    # ids[0] is the LRU victim but sticky: ids[1] must go instead.
    pool.fetch_page(ids[3])
    pool.unpin_page(ids[3])
    assert ids[0] in pool._frames
    assert ids[1] not in pool._frames
    # With everything else pinned, protection yields rather than failing.
    pool.fetch_page(ids[2])
    pool.fetch_page(ids[3])
    pool.fetch_page(ids[4])
    assert ids[0] not in pool._frames
    assert pool.protected_page_ids == frozenset({ids[0]})
    for page_id in (ids[2], ids[3], ids[4]):
        pool.unpin_page(page_id)


def test_unprotect_page_restores_evictability():
    _disk, pool = make_pool(capacity=8)
    pool.protect_page(3)
    assert pool.protected_page_ids == frozenset({3})
    pool.unprotect_page(3)
    pool.unprotect_page(99)  # unknown ids are fine
    assert pool.protected_page_ids == frozenset()


def test_prefetch_run_reads_ahead_unpinned():
    _disk, pool = make_pool(capacity=16)
    ids = _flushed_pages(pool, 6)
    read = pool.prefetch_run(ids)
    assert read == 6
    assert pool.stats.readahead_pages == 6
    assert all(page.pin_count == 0 for page in pool._probation.values())
    before = pool.stats.copy()
    for page_id in ids:  # demand fetches now hit in memory
        pool.fetch_page(page_id, scan=True)
        pool.unpin_page(page_id)
    delta = pool.stats - before
    assert delta.misses == 0 and delta.hits == 6
    # Re-prefetching cached pages reads nothing.
    assert pool.prefetch_run(ids) == 0


def test_unpins_are_counted():
    _disk, pool = make_pool()
    page = pool.new_page()
    pool.unpin_page(page.page_id)
    pool.fetch_page(page.page_id)
    pool.unpin_page(page.page_id)
    assert pool.stats.unpins == 2


def test_stats_copy_and_subtract_cover_all_fields():
    import dataclasses

    from repro.storage.buffer import BufferStats

    a = BufferStats(**{
        field.name: i + 1
        for i, field in enumerate(dataclasses.fields(BufferStats))
    })
    zero = a - a
    assert all(
        getattr(zero, field.name) == 0
        for field in dataclasses.fields(BufferStats)
    )
    assert a.copy() == a


def test_discard_page_from_probation():
    _disk, pool = make_pool(capacity=8)
    (page_id,) = _flushed_pages(pool, 1)
    pool.fetch_page(page_id, scan=True)
    pool.unpin_page(page_id)
    pool.discard_page(page_id)
    assert pool.num_cached == 0


def test_point_workload_is_plain_lru():
    """No scan fetches, no protection: the probation segment stays empty
    and eviction order is exactly the old LRU behaviour."""
    disk = DiskManager()
    pool = BufferPool(disk, capacity=2, eviction_batch=1)
    ids = _flushed_pages(pool, 3)
    for page_id in ids[:2]:
        pool.fetch_page(page_id)
        pool.unpin_page(page_id)
    pool.fetch_page(ids[0])  # refresh: ids[1] becomes the LRU victim
    pool.unpin_page(ids[0])
    pool.fetch_page(ids[2])
    pool.unpin_page(ids[2])
    assert not pool._probation
    assert ids[1] not in pool._frames
    assert ids[0] in pool._frames
