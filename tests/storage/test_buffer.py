"""Tests for the LRU buffer pool."""

import pytest

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool(capacity=3):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def test_new_page_is_pinned():
    _disk, pool = make_pool()
    page = pool.new_page()
    assert page.pin_count == 1
    pool.unpin_page(page.page_id)
    assert page.pin_count == 0


def test_fetch_hit_and_miss_accounting():
    disk, pool = make_pool()
    page = pool.new_page()
    page.data[0] = 42
    pool.unpin_page(page.page_id, dirty=True)
    pool.flush_all()
    pool.clear()

    fetched = pool.fetch_page(page.page_id)   # miss
    pool.unpin_page(fetched.page_id)
    again = pool.fetch_page(page.page_id)     # hit
    pool.unpin_page(again.page_id)
    assert pool.stats.misses == 1
    assert pool.stats.hits == 1
    assert again.data[0] == 42


def test_eviction_writes_back_dirty_pages():
    disk, pool = make_pool(capacity=2)
    first = pool.new_page()
    first.data[0] = 7
    pool.unpin_page(first.page_id, dirty=True)
    # Fill the pool past capacity to evict `first`.
    for _ in range(2):
        p = pool.new_page()
        pool.unpin_page(p.page_id, dirty=True)
    assert pool.stats.evictions >= 1
    assert disk.read_page(first.page_id)[0] == 7


def test_pinned_pages_survive_eviction():
    _disk, pool = make_pool(capacity=2)
    pinned = pool.new_page()
    other = pool.new_page()
    pool.unpin_page(other.page_id)
    extra = pool.new_page()  # must evict `other`, not `pinned`
    pool.unpin_page(extra.page_id)
    assert pool.fetch_page(pinned.page_id).pin_count == 2
    pool.unpin_page(pinned.page_id)
    pool.unpin_page(pinned.page_id)


def test_all_pinned_raises():
    _disk, pool = make_pool(capacity=1)
    pool.new_page()
    with pytest.raises(StorageError):
        pool.new_page()


def test_unpin_unknown_page_raises():
    _disk, pool = make_pool()
    with pytest.raises(StorageError):
        pool.unpin_page(99)


def test_double_unpin_raises():
    _disk, pool = make_pool()
    page = pool.new_page()
    pool.unpin_page(page.page_id)
    with pytest.raises(StorageError):
        pool.unpin_page(page.page_id)


def test_clear_with_pinned_page_raises():
    _disk, pool = make_pool()
    pool.new_page()
    with pytest.raises(StorageError):
        pool.clear()


def test_hit_ratio():
    _disk, pool = make_pool()
    assert pool.stats.hit_ratio == 0.0
    page = pool.new_page()
    pool.unpin_page(page.page_id)
    pool.fetch_page(page.page_id)
    pool.unpin_page(page.page_id)
    assert pool.stats.hit_ratio == 1.0


def test_eviction_drops_cached_obj():
    _disk, pool = make_pool(capacity=1)
    page = pool.new_page()
    page.cached_obj = object()
    pool.unpin_page(page.page_id)
    other = pool.new_page()
    pool.unpin_page(other.page_id)
    refetched = pool.fetch_page(page.page_id)
    assert refetched.cached_obj is None
    pool.unpin_page(page.page_id)
