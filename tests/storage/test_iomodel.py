"""Tests for the simulated I/O cost model."""

import pytest

from repro.storage.iomodel import IOCostModel, IOStats


def test_first_access_is_random():
    model = IOCostModel(random_ms=8.0, sequential_ms=0.05)
    model.record_read(0)
    assert model.stats.random_reads == 1
    assert model.stats.sequential_reads == 0
    assert model.stats.simulated_ms == 8.0


def test_adjacent_access_is_sequential():
    model = IOCostModel(random_ms=8.0, sequential_ms=0.05)
    model.record_write(10)
    model.record_write(11)
    model.record_write(12)
    assert model.stats.random_writes == 1
    assert model.stats.sequential_writes == 2
    assert model.stats.simulated_ms == pytest.approx(8.0 + 2 * 0.05)


def test_same_page_reaccess_is_sequential():
    model = IOCostModel()
    model.record_read(5)
    model.record_read(5)
    assert model.stats.sequential_reads == 1


def test_backward_jump_is_random():
    model = IOCostModel()
    model.record_read(5)
    model.record_read(4)
    assert model.stats.random_reads == 2


def test_mixed_read_write_head_position_shared():
    model = IOCostModel()
    model.record_write(3)
    model.record_read(4)  # sequential after the write
    assert model.stats.sequential_reads == 1


def test_snapshot_and_delta():
    model = IOCostModel()
    model.record_read(0)
    before = model.snapshot()
    model.record_read(1)
    model.record_read(100)
    delta = model.stats - before
    assert delta.reads == 2
    assert delta.sequential_reads == 1
    assert delta.random_reads == 1


def test_reset_clears_counters_and_head():
    model = IOCostModel()
    model.record_read(0)
    model.reset()
    assert model.stats.total_ios == 0
    model.record_read(1)  # head forgotten -> random again
    assert model.stats.random_reads == 1


def test_stats_properties():
    stats = IOStats(sequential_reads=2, random_reads=3,
                    sequential_writes=4, random_writes=1)
    assert stats.reads == 5
    assert stats.writes == 5
    assert stats.total_ios == 10


def test_stats_copy_is_independent():
    stats = IOStats(random_reads=1)
    clone = stats.copy()
    clone.random_reads = 99
    assert stats.random_reads == 1
