"""Tests for the write-ahead log cost accounting."""

import pytest

from repro.constants import PAGE_SIZE
from repro.obs import get_registry
from repro.storage.iomodel import IOCostModel
from repro.storage.wal import CrashError, CrashPoint, WriteAheadLog


def test_records_accumulate_until_page_fills():
    model = IOCostModel()
    wal = WriteAheadLog(model, record_bytes=64)
    per_page = PAGE_SIZE // 64
    wal.log_row_operation(per_page - 1)
    assert wal.pages_written == 0
    wal.log_row_operation(1)
    assert wal.pages_written == 1
    assert model.stats.sequential_writes == 1


def test_bulk_logging_counts_pages():
    model = IOCostModel()
    wal = WriteAheadLog(model, record_bytes=64)
    per_page = PAGE_SIZE // 64
    wal.log_row_operation(10 * per_page)
    assert wal.pages_written == 10
    assert wal.records_logged == 10 * per_page


def test_commit_forces_partial_page_as_random_write():
    model = IOCostModel()
    wal = WriteAheadLog(model)
    wal.log_row_operation(1)
    wal.commit()
    assert wal.pages_written == 1
    assert model.stats.random_writes == 1


def test_commit_with_empty_page_is_noop():
    model = IOCostModel()
    wal = WriteAheadLog(model)
    wal.commit()
    assert wal.pages_written == 0


def test_commit_crash_then_retry_still_prices_partial_page():
    """A crash inside the commit's page write must leave the partial
    page pending: the retried commit still forces (and prices) it,
    instead of silently no-opping because state was cleared too early."""
    model = IOCostModel()
    point = CrashPoint()
    wal = WriteAheadLog(model, crash_point=point)
    wal.log_row_operation(1)
    point.arm()
    with pytest.raises(CrashError):
        wal.commit()
    assert wal.pages_written == 0
    assert model.stats.random_writes == 0

    point.disarm()  # the simulated machine reboots
    wal.commit()
    assert wal.pages_written == 1
    assert model.stats.random_writes == 1


def test_commit_counter_only_moves_when_work_is_done():
    counter = get_registry().counter("wal.commits")
    model = IOCostModel()
    wal = WriteAheadLog(model)
    before = counter.value
    wal.commit()  # empty: no page forced, no commit counted
    assert counter.value == before
    wal.log_row_operation(1)
    wal.commit()
    assert counter.value == before + 1


def test_invalid_args():
    model = IOCostModel()
    with pytest.raises(ValueError):
        WriteAheadLog(model, record_bytes=0)
    wal = WriteAheadLog(model)
    with pytest.raises(ValueError):
        wal.log_row_operation(-1)


def test_overhead_accounting_in_stats():
    model = IOCostModel()
    model.record_overhead(2.5)
    model.record_overhead(1.5)
    assert model.stats.overhead_ms == 4.0
    assert model.stats.total_ms == 4.0
    before = model.snapshot()
    model.record_overhead(1.0)
    assert (model.stats - before).overhead_ms == 1.0
