"""Tests for blob storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.blob import BlobFile, BlobHandle
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_blob_file(capacity=32):
    disk = DiskManager()
    pool = BufferPool(disk, capacity=capacity)
    return disk, pool, BlobFile(pool)


def test_roundtrip_small():
    _d, _p, blobs = make_blob_file()
    handle = blobs.append(b"hello world")
    assert blobs.read(handle) == b"hello world"
    assert handle.num_pages == 1


def test_roundtrip_multi_page():
    _d, _p, blobs = make_blob_file()
    payload = bytes(range(256)) * 64  # 16 KiB = 4 pages
    handle = blobs.append(payload)
    assert handle.num_pages == 4
    assert blobs.read(handle) == payload


def test_empty_blob():
    _d, _p, blobs = make_blob_file()
    handle = blobs.append(b"")
    assert handle.num_pages == 1
    assert blobs.read(handle) == b""


def test_exact_page_boundary():
    _d, _p, blobs = make_blob_file()
    payload = b"\xaa" * PAGE_SIZE
    handle = blobs.append(payload)
    assert handle.num_pages == 1
    assert blobs.read(handle) == payload


def test_multiple_blobs_independent():
    _d, _p, blobs = make_blob_file()
    a = blobs.append(b"a" * 5000)
    b = blobs.append(b"b" * 100)
    assert blobs.read(a) == b"a" * 5000
    assert blobs.read(b) == b"b" * 100
    assert blobs.num_pages == 3


def test_blob_pages_are_contiguous():
    _d, _p, blobs = make_blob_file()
    handle = blobs.append(b"x" * (3 * PAGE_SIZE))
    assert handle.num_pages == 3  # run allocation is contiguous by design


def test_bad_handle_rejected():
    _d, _p, blobs = make_blob_file()
    with pytest.raises(StorageError):
        blobs.read(BlobHandle(0, 0, 0))


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=3 * PAGE_SIZE))
def test_roundtrip_property(payload):
    _d, _p, blobs = make_blob_file()
    assert blobs.read(blobs.append(payload)) == payload
