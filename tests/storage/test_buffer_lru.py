"""Focused tests of the buffer pool's replacement policy and statistics.

These pin down the behaviors the observability layer reports on: true LRU
victim selection (hits refresh recency), batched eviction with dirty
write-back in page-id order, pinned-page skipping, and the
``BufferStats`` snapshot/delta semantics the bench harness relies on.
"""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import DiskManager


def make_pool(capacity=4, eviction_batch=1):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity, eviction_batch=eviction_batch)


def _fill(pool, n):
    """Allocate n unpinned pages and return their ids (in LRU order)."""
    ids = []
    for _ in range(n):
        page = pool.new_page()
        pool.unpin_page(page.page_id)
        ids.append(page.page_id)
    return ids


# ----------------------------------------------------------------------
# LRU ordering
# ----------------------------------------------------------------------
class TestLruOrder:
    def test_least_recently_used_page_is_evicted_first(self):
        _disk, pool = make_pool(capacity=3)
        a, b, c = _fill(pool, 3)
        overflow = pool.new_page()  # evicts `a`, the oldest
        pool.unpin_page(overflow.page_id)
        assert a not in pool._frames
        assert b in pool._frames and c in pool._frames

    def test_fetch_hit_refreshes_recency(self):
        _disk, pool = make_pool(capacity=3)
        a, b, _c = _fill(pool, 3)
        # Touch `a`: it becomes most-recent, so `b` is now the LRU victim.
        pool.unpin_page(pool.fetch_page(a).page_id)
        overflow = pool.new_page()
        pool.unpin_page(overflow.page_id)
        assert a in pool._frames
        assert b not in pool._frames

    def test_eviction_order_follows_access_sequence(self):
        _disk, pool = make_pool(capacity=4)
        ids = _fill(pool, 4)
        # Re-access in reverse: recency order is now reversed(ids).
        for page_id in reversed(ids):
            pool.unpin_page(pool.fetch_page(page_id).page_id)
        evicted = []
        for _ in range(4):
            page = pool.new_page()
            pool.unpin_page(page.page_id)
            evicted.append(next(i for i in ids if i not in pool._frames
                                and i not in evicted))
        assert evicted == list(reversed(ids))

    def test_pinned_pages_are_skipped_not_evicted(self):
        _disk, pool = make_pool(capacity=3)
        pinned = pool.new_page()  # stays pinned — oldest but untouchable
        _fill(pool, 2)
        before = pool.stats.evictions
        overflow = pool.new_page()
        pool.unpin_page(overflow.page_id)
        assert pinned.page_id in pool._frames
        assert pool.stats.evictions == before + 1
        pool.unpin_page(pinned.page_id)

    def test_exhausted_pool_raises(self):
        _disk, pool = make_pool(capacity=2)
        pool.new_page()
        pool.new_page()
        with pytest.raises(StorageError, match="exhausted"):
            pool.new_page()


# ----------------------------------------------------------------------
# batched eviction + write-back ordering
# ----------------------------------------------------------------------
class TestBatchedEviction:
    def test_batch_evicts_up_to_eviction_batch_pages(self):
        _disk, pool = make_pool(capacity=4, eviction_batch=3)
        _fill(pool, 4)
        overflow = pool.new_page()
        pool.unpin_page(overflow.page_id)
        assert pool.stats.evictions == 3
        assert pool.num_cached == 2  # 4 - 3 evicted + 1 admitted

    def test_dirty_victims_written_back_in_page_id_order(self):
        disk, pool = make_pool(capacity=4, eviction_batch=4)
        ids = []
        for _ in range(4):
            page = pool.new_page()
            page.data[0] = 1
            pool.unpin_page(page.page_id, dirty=True)
            ids.append(page.page_id)
        # Reverse recency so LRU order disagrees with page-id order.
        for page_id in reversed(ids):
            pool.unpin_page(pool.fetch_page(page_id).page_id)

        written = []
        original = disk.write_page

        def recording_write(page_id, data):
            written.append(page_id)
            return original(page_id, data)

        disk.write_page = recording_write
        try:
            overflow = pool.new_page()
            pool.unpin_page(overflow.page_id)
        finally:
            disk.write_page = original
        assert written == sorted(written)
        assert set(written) == set(ids)

    def test_clean_victims_are_not_written_back(self):
        disk, pool = make_pool(capacity=2, eviction_batch=2)
        _fill(pool, 2)  # never marked dirty
        written = []
        original = disk.write_page
        disk.write_page = lambda pid, data: written.append(pid) or original(pid, data)
        try:
            overflow = pool.new_page()
            pool.unpin_page(overflow.page_id)
        finally:
            disk.write_page = original
        assert written == []

    def test_evicted_dirty_page_content_survives_refetch(self):
        _disk, pool = make_pool(capacity=1, eviction_batch=1)
        page = pool.new_page()
        page.data[:3] = b"xyz"
        pool.unpin_page(page.page_id, dirty=True)
        other = pool.new_page()  # evicts + writes back `page`
        pool.unpin_page(other.page_id)
        refetched = pool.fetch_page(page.page_id)
        assert bytes(refetched.data[:3]) == b"xyz"
        pool.unpin_page(page.page_id)


# ----------------------------------------------------------------------
# BufferStats semantics
# ----------------------------------------------------------------------
class TestBufferStats:
    def test_cold_pool_has_zero_accesses_and_zero_ratio(self):
        stats = BufferStats()
        assert stats.accesses == 0
        assert stats.hit_ratio == 0.0

    def test_new_pages_are_not_accesses(self):
        """Allocations must not masquerade as cache lookups: a pool that
        has only ever allocated reads as cold (0 of 0), not as 0% hits."""
        _disk, pool = make_pool()
        _fill(pool, 3)
        assert pool.stats.new_pages == 3
        assert pool.stats.accesses == 0
        assert pool.stats.hit_ratio == 0.0

    def test_hit_ratio_counts_only_lookups(self):
        _disk, pool = make_pool()
        (page_id,) = _fill(pool, 1)
        pool.flush_all()
        pool.clear()
        pool.unpin_page(pool.fetch_page(page_id).page_id)  # miss
        pool.unpin_page(pool.fetch_page(page_id).page_id)  # hit
        pool.unpin_page(pool.fetch_page(page_id).page_id)  # hit
        assert pool.stats.accesses == 3
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)

    def test_copy_is_independent_snapshot(self):
        _disk, pool = make_pool()
        (page_id,) = _fill(pool, 1)
        snap = pool.stats.copy()
        pool.unpin_page(pool.fetch_page(page_id).page_id)
        assert snap.hits == 0
        assert pool.stats.hits == 1

    def test_delta_subtraction(self):
        """before/after phase deltas — exactly how the bench harness
        attributes buffer activity to a phase."""
        _disk, pool = make_pool(capacity=2, eviction_batch=1)
        before = pool.stats.copy()
        ids = _fill(pool, 3)  # 3 allocations, 1 eviction
        pool.unpin_page(pool.fetch_page(ids[-1]).page_id)  # hit
        pool.unpin_page(pool.fetch_page(ids[0]).page_id)   # miss (evicted)
        delta = pool.stats - before
        assert (delta.hits, delta.misses) == (1, 1)
        assert delta.new_pages == 3
        assert delta.evictions >= 1
        assert delta.accesses == 2
        assert delta.hit_ratio == pytest.approx(0.5)
