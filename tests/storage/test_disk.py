"""Tests for the simulated disk manager."""

import pytest

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.disk import DiskManager


def test_allocate_is_monotonic():
    disk = DiskManager()
    ids = [disk.allocate_page() for _ in range(5)]
    assert ids == [0, 1, 2, 3, 4]


def test_allocate_run_is_contiguous():
    disk = DiskManager()
    disk.allocate_page()
    run = disk.allocate_run(4)
    assert run == [1, 2, 3, 4]


def test_roundtrip_write_read():
    disk = DiskManager()
    pid = disk.allocate_page()
    payload = bytes(range(256)) * (PAGE_SIZE // 256)
    disk.write_page(pid, payload)
    assert bytes(disk.read_page(pid)) == payload


def test_read_unwritten_page_is_zeroed():
    disk = DiskManager()
    pid = disk.allocate_page()
    assert bytes(disk.read_page(pid)) == bytes(PAGE_SIZE)


def test_read_unallocated_page_raises():
    disk = DiskManager()
    with pytest.raises(StorageError):
        disk.read_page(0)


def test_short_write_raises():
    disk = DiskManager()
    pid = disk.allocate_page()
    with pytest.raises(StorageError):
        disk.write_page(pid, b"short")


def test_free_page_is_reused():
    disk = DiskManager()
    a = disk.allocate_page()
    disk.allocate_page()
    disk.free_page(a)
    assert disk.num_allocated == 1
    assert disk.allocate_page() == a
    assert disk.num_allocated == 2


def test_bytes_allocated():
    disk = DiskManager()
    disk.allocate_run(3)
    assert disk.bytes_allocated == 3 * PAGE_SIZE


def test_io_accounting_flows_to_cost_model():
    disk = DiskManager()
    pid = disk.allocate_page()
    disk.write_page(pid, bytes(PAGE_SIZE))
    disk.read_page(pid)
    assert disk.cost_model.stats.total_ios == 2


def test_file_backed_roundtrip(tmp_path):
    path = str(tmp_path / "disk.bin")
    with DiskManager(path=path) as disk:
        pid = disk.allocate_page()
        payload = b"\xab" * PAGE_SIZE
        disk.write_page(pid, payload)
        assert bytes(disk.read_page(pid)) == payload


def test_file_backed_delete(tmp_path):
    import os

    path = str(tmp_path / "disk.bin")
    disk = DiskManager(path=path)
    pid = disk.allocate_page()
    disk.write_page(pid, bytes(PAGE_SIZE))
    disk.delete_backing_file()
    assert not os.path.exists(path)


# ----------------------------------------------------------------------
# checkpoint dump / restore
# ----------------------------------------------------------------------
def _filled_disk(pages=5):
    disk = DiskManager()
    for i in range(pages):
        pid = disk.allocate_page()
        disk.write_page(pid, bytes([i + 1]) * PAGE_SIZE)
    return disk


def test_dump_and_restore_roundtrip(tmp_path):
    disk = _filled_disk()
    path = str(tmp_path / "pages.bin")
    assert disk.dump_pages(path) == 5
    restored = DiskManager.restore(path, disk.allocation_state())
    for pid in range(5):
        assert restored.read_page(pid) == disk.read_page(pid)


def test_restore_rejects_truncated_dump(tmp_path):
    """A short page file is a torn checkpoint, not zero-fill material."""
    disk = _filled_disk()
    path = str(tmp_path / "pages.bin")
    disk.dump_pages(path)
    import os

    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 100)
    with pytest.raises(StorageError, match="truncated"):
        DiskManager.restore(path, disk.allocation_state())


def test_dump_pages_hits_crash_point_per_page(tmp_path):
    from repro.storage.wal import CrashError, CrashPoint

    disk = _filled_disk()
    point = CrashPoint()
    point.arm(after=2)
    with pytest.raises(CrashError, match="page 2"):
        disk.dump_pages(str(tmp_path / "pages.bin"), crash_point=point)
    assert point.fired
