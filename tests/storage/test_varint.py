"""Property and error-path tests of the delta+varint column codec.

The v3 columnar leaf format rests on this codec: encode→decode must be
the identity for every int64 coordinate column — including empty
columns, single-row runs, and maximum-magnitude deltas (a descending
then ascending swing between ±(2^63 - 1)) — and every malformed buffer
must surface as a typed :class:`repro.errors.InvalidRecordError`, never
a bare ``struct.error`` or silent garbage.
"""

import struct

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.errors import InvalidRecordError
from repro.storage.codec import (
    EntryCodec,
    RecordCodec,
    decode_delta_column,
    encode_delta_column,
    int_column,
    varint_size,
    zigzag_decode,
    zigzag_encode,
)

INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)

int64s = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)


# ----------------------------------------------------------------------
# zigzag
# ----------------------------------------------------------------------
@given(int64s)
@settings(max_examples=200, deadline=None)
def test_zigzag_round_trip(value):
    encoded = zigzag_encode(value)
    assert encoded >= 0
    assert zigzag_decode(encoded) == value


def test_zigzag_orders_by_magnitude():
    # Small magnitudes (either sign) get small codes — that is the
    # whole point of zigzag before a varint.
    assert zigzag_encode(0) == 0
    assert zigzag_encode(-1) == 1
    assert zigzag_encode(1) == 2
    assert varint_size(zigzag_encode(0)) == 1
    assert varint_size(zigzag_encode(INT64_MAX)) == 10


# ----------------------------------------------------------------------
# delta column round trip
# ----------------------------------------------------------------------
@given(st.lists(int64s, min_size=0, max_size=64))
@settings(max_examples=200, deadline=None)
def test_delta_column_round_trip(values):
    raw = encode_delta_column(values)
    assert decode_delta_column(raw, 0, len(raw), len(values)) == tuple(values)


def test_delta_column_empty():
    assert encode_delta_column([]) == b""
    assert decode_delta_column(b"", 0, 0, 0) == ()


def test_delta_column_single_row():
    raw = encode_delta_column([INT64_MAX])
    assert decode_delta_column(raw, 0, len(raw), 1) == (INT64_MAX,)


def test_delta_column_max_magnitude_swing():
    # Max-magnitude deltas in both directions: the delta between the
    # extremes does not itself fit in int64, but the running values do.
    values = [INT64_MAX, INT64_MIN, INT64_MAX, 0]
    raw = encode_delta_column(values)
    assert decode_delta_column(raw, 0, len(raw), len(values)) == tuple(values)


def test_delta_column_embedded_at_offset():
    values = [7, 5, 900, 900]
    raw = encode_delta_column(values)
    framed = b"\xaa\xbb" + raw + b"\xcc"
    assert decode_delta_column(framed, 2, len(raw), 4) == tuple(values)


def test_encode_rejects_out_of_range_values():
    with pytest.raises(InvalidRecordError):
        encode_delta_column([INT64_MAX + 1])


# ----------------------------------------------------------------------
# malformed buffers -> typed errors
# ----------------------------------------------------------------------
@given(st.lists(int64s, min_size=1, max_size=16), st.data())
@settings(max_examples=100, deadline=None)
def test_truncated_column_raises_typed_error(values, data):
    raw = encode_delta_column(values)
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(InvalidRecordError):
        decode_delta_column(raw[:cut], 0, cut, len(values))


def test_column_length_overruns_buffer():
    raw = encode_delta_column([1, 2, 3])
    with pytest.raises(InvalidRecordError):
        decode_delta_column(raw, 0, len(raw) + 1, 3)
    with pytest.raises(InvalidRecordError):
        decode_delta_column(raw, 0, -1, 3)


def test_trailing_bytes_rejected():
    raw = encode_delta_column([1, 2]) + b"\x00"
    with pytest.raises(InvalidRecordError):
        decode_delta_column(raw, 0, len(raw), 2)


def test_overlong_varint_rejected():
    # 11 continuation bytes: no int64 needs more than 10.
    raw = b"\x80" * 10 + b"\x01"
    with pytest.raises(InvalidRecordError):
        decode_delta_column(raw, 0, len(raw), 1)


def test_running_value_overflow_rejected():
    # Two max-positive deltas in a row overflow the running int64.
    half = zigzag_encode(INT64_MAX)
    chunk = bytearray()
    for _ in range(2):
        value = half
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                chunk.append(byte | 0x80)
            else:
                chunk.append(byte)
                break
    with pytest.raises(InvalidRecordError):
        decode_delta_column(bytes(chunk), 0, len(chunk), 2)


# ----------------------------------------------------------------------
# batch struct decoders raise typed errors too
# ----------------------------------------------------------------------
def test_decode_strided_rejects_short_buffer():
    codec = RecordCodec([int_column()])
    buf = struct.pack("<3q", 1, 2, 3)
    assert codec.decode_strided(buf, 3, 0) == [(1,), (2,), (3,)]
    with pytest.raises(InvalidRecordError):
        codec.decode_strided(buf, 4, 0)
    with pytest.raises(InvalidRecordError):
        codec.decode_strided(buf, 1, 0, offset=-1)
    with pytest.raises(InvalidRecordError):
        codec.decode_strided(buf, 1, 0, offset=17)  # misaligned tail


def test_entry_codec_iterators_reject_short_buffer():
    codec = EntryCodec("qd")
    buf = bytearray(codec.item_size * 2)
    codec.pack_into(buf, 0, (1, 1.5, 2, 2.5), 2)
    assert list(codec.iter_unpack_from(bytes(buf), 0, 2)) == [
        (1, 1.5), (2, 2.5),
    ]
    with pytest.raises(InvalidRecordError):
        list(codec.iter_unpack_from(bytes(buf), 0, 3))
    with pytest.raises(InvalidRecordError):
        codec.unpack_flat_from(bytes(buf), 8, 2)
