"""Crash-recovery tests: kill the simulated process mid-merge-pack and
verify the create-new-then-swap discipline leaves a consistent database.

The scenario (paper Sec. 2.5's bulk-incremental story): a loaded Cubetree
engine is checkpointed, an increment starts merge-packing, and the process
dies on a data-page write part-way through.  Because merge-pack builds the
new tree in freshly allocated pages and only retires the old tree after
the build completes, the checkpointed database must reopen cleanly, pass
fsck, and answer the pre-merge queries with the pre-merge answers — and a
retry of the increment must then succeed.
"""

import pytest

from repro.analysis.fsck import check_engine
from repro.core.persistence import load_engine, save_engine
from repro.experiments.common import (
    ExperimentConfig,
    FIG12_NODES,
    build_cubetree_engine,
    build_warehouse,
)
from repro.query.generator import RandomQueryGenerator
from repro.storage.wal import CrashError, CrashPoint, WriteAheadLog
from repro.storage.iomodel import IOCostModel


# ----------------------------------------------------------------------
# the CrashPoint hook itself
# ----------------------------------------------------------------------
class TestCrashPoint:
    def test_disarmed_is_free(self):
        point = CrashPoint()
        assert not point.armed
        for _ in range(100):
            point.hit("noop")
        assert not point.fired

    def test_arm_zero_crashes_immediately(self):
        point = CrashPoint()
        point.arm()
        with pytest.raises(CrashError, match="during page write"):
            point.hit("page write")
        assert point.fired

    def test_countdown_lets_n_operations_pass(self):
        point = CrashPoint()
        point.arm(after=3)
        for _ in range(3):
            point.hit()
        with pytest.raises(CrashError):
            point.hit()
        assert point.fired

    def test_disarm_stops_injection(self):
        point = CrashPoint()
        point.arm()
        point.disarm()
        point.hit()
        assert not point.fired

    def test_negative_countdown_rejected(self):
        with pytest.raises(ValueError):
            CrashPoint().arm(after=-1)

    def test_wal_write_path_is_hooked(self):
        point = CrashPoint()
        wal = WriteAheadLog(IOCostModel(), crash_point=point)
        wal.log_row_operation(10)  # well under one page: no write yet
        point.arm()
        with pytest.raises(CrashError, match="wal page write"):
            wal.commit()
        assert point.fired


# ----------------------------------------------------------------------
# end-to-end: crash mid-merge-pack, reopen, verify
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def loaded_engine_setup():
    """A loaded engine, its warehouse, and a query workload."""
    # A small buffer pool forces evictions (and hence disk writes) while
    # the merge is still running, so an armed crash point genuinely
    # fires mid-merge-pack, not at the final flush.
    config = ExperimentConfig(
        scale_factor=0.001, seed=11, queries_per_node=3, buffer_pages=32
    )
    generator, data = build_warehouse(config)
    engine, _ = build_cubetree_engine(config, data, replicate=False)
    delta = generator.generate_increment(0.2)
    qgen = RandomQueryGenerator(data.schema, seed=5)
    queries = [
        query
        for node in FIG12_NODES
        for query in qgen.generate_for_node(node, config.queries_per_node)
    ]
    return engine, delta, queries


def _answers(engine, queries):
    return [engine.query(q).rows for q in queries]


@pytest.mark.parametrize("crash_after", [0, 5, 40])
def test_crash_mid_merge_pack_recovers_from_checkpoint(
    tmp_path, loaded_engine_setup, crash_after
):
    engine, delta, queries = loaded_engine_setup
    checkpoint = str(tmp_path / f"db_{crash_after}")
    save_engine(engine, checkpoint)
    before = _answers(engine, queries)

    # Reopen the checkpoint and kill it on the Nth data-page write of
    # the merge.  (The module-scoped engine stays pristine.)
    victim = load_engine(checkpoint)
    assert _answers(victim, queries) == before
    point = CrashPoint()
    victim.disk.crash_point = point
    point.arm(after=crash_after)
    with pytest.raises(CrashError):
        victim.update(delta)
    assert point.fired

    # The "machine reboots": reopen from the on-disk checkpoint.
    recovered = load_engine(checkpoint)
    report = check_engine(recovered)
    assert report.ok, report.format()
    assert _answers(recovered, queries) == before

    # Retrying the increment on the recovered engine succeeds and the
    # refreshed forest is structurally sound.
    recovered.update(delta)
    refreshed = check_engine(recovered)
    assert refreshed.ok, refreshed.format()

    # And the refreshed answers match a crash-free refresh of the same
    # checkpoint (recovery lost nothing and invented nothing).
    oracle = load_engine(checkpoint)
    oracle.update(delta)
    assert _answers(recovered, queries) == _answers(oracle, queries)


def test_crashed_engine_old_forest_is_untouched_in_memory(
    tmp_path, loaded_engine_setup
):
    """Even without reopening, a crash during the *pack* of the new tree
    leaves every referenced (old) tree intact: the swap happens only
    after the new tree is complete."""
    engine, delta, queries = loaded_engine_setup
    checkpoint = str(tmp_path / "db_inplace")
    save_engine(engine, checkpoint)

    victim = load_engine(checkpoint)
    point = CrashPoint()
    victim.disk.crash_point = point
    point.arm(after=10)
    with pytest.raises(CrashError):
        victim.update(delta)

    victim.disk.crash_point = None  # "reboot" without reopening
    report = check_engine(victim)
    assert report.ok, report.format()
    # Every query still answers without error.
    for query in queries:
        victim.query(query)
