"""Tests for heap files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.codec import RecordCodec, float_column, int_column
from repro.storage.disk import DiskManager
from repro.storage.heap import RID, HeapFile


def make_heap(columns=None, capacity=64):
    codec = RecordCodec(columns or [int_column(), float_column()])
    disk = DiskManager()
    pool = BufferPool(disk, capacity=capacity)
    return disk, pool, HeapFile(pool, codec)


def test_insert_and_fetch():
    _d, _p, heap = make_heap()
    rid = heap.insert((1, 2.5))
    assert heap.fetch(rid) == (1, 2.5)
    assert len(heap) == 1


def test_insert_many_spans_pages():
    _d, _p, heap = make_heap()
    rids = [heap.insert((i, float(i))) for i in range(1000)]
    assert len(heap) == 1000
    assert heap.num_pages > 1
    assert heap.fetch(rids[999]) == (999, 999.0)


def test_update_in_place():
    _d, _p, heap = make_heap()
    rid = heap.insert((1, 1.0))
    heap.update(rid, (1, 42.0))
    assert heap.fetch(rid) == (1, 42.0)


def test_delete_and_slot_reuse():
    _d, _p, heap = make_heap()
    rid = heap.insert((1, 1.0))
    heap.delete(rid)
    assert len(heap) == 0
    with pytest.raises(StorageError):
        heap.fetch(rid)
    rid2 = heap.insert((2, 2.0))
    assert rid2 == rid  # freed slot reused


def test_double_delete_raises():
    _d, _p, heap = make_heap()
    rid = heap.insert((1, 1.0))
    heap.delete(rid)
    with pytest.raises(StorageError):
        heap.delete(rid)


def test_update_deleted_raises():
    _d, _p, heap = make_heap()
    rid = heap.insert((1, 1.0))
    heap.delete(rid)
    with pytest.raises(StorageError):
        heap.update(rid, (9, 9.0))


def test_scan_returns_all_live_records():
    _d, _p, heap = make_heap()
    rids = [heap.insert((i, float(i))) for i in range(50)]
    heap.delete(rids[10])
    heap.delete(rids[20])
    records = list(heap.scan_records())
    assert len(records) == 48
    assert (10, 10.0) not in records
    assert (49, 49.0) in records


def test_scan_is_in_page_order():
    _d, _p, heap = make_heap()
    for i in range(500):
        heap.insert((i, 0.0))
    rids = [rid for rid, _ in heap.scan()]
    assert rids == sorted(rids)


def test_bulk_append_matches_inserts():
    _d, _p, heap = make_heap()
    rows = [(i, float(i)) for i in range(777)]
    rids = heap.bulk_append(rows)
    assert len(heap) == 777
    assert len(rids) == 777
    assert list(heap.scan_records()) == rows


def test_bulk_append_is_sequential_io():
    disk, pool, heap = make_heap(capacity=4)
    rows = [(i, float(i)) for i in range(5000)]
    before = disk.cost_model.snapshot()
    heap.bulk_append(rows)
    pool.flush_all()
    delta = disk.cost_model.stats - before
    # Every page is written exactly once, in allocation order.
    assert delta.sequential_writes >= delta.random_writes


def test_record_too_big_raises():
    from repro.storage.codec import string_column

    codec = RecordCodec([string_column(8192)])
    disk = DiskManager()
    pool = BufferPool(disk)
    with pytest.raises(StorageError):
        HeapFile(pool, codec)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(-1000, 1000),
                          st.floats(allow_nan=False, allow_infinity=False,
                                    width=32)),
                max_size=300))
def test_heap_preserves_multiset_property(rows):
    _d, _p, heap = make_heap()
    for row in rows:
        heap.insert(row)
    stored = sorted(heap.scan_records())
    expected = sorted((a, float(b)) for a, b in rows)
    assert stored == expected


def test_rid_ordering():
    assert RID(0, 5) < RID(1, 0) < RID(1, 3)
