"""Tests for the fixed-width record codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidRecordError
from repro.storage.codec import (
    ColumnSpec,
    ColumnType,
    RecordCodec,
    float_column,
    int_column,
    string_column,
)


def test_int_roundtrip():
    codec = RecordCodec([int_column(), int_column()])
    raw = codec.encode((7, -3))
    assert codec.decode(raw) == (7, -3)


def test_float_roundtrip():
    codec = RecordCodec([float_column()])
    assert codec.decode(codec.encode((3.25,))) == (3.25,)


def test_string_roundtrip_and_padding():
    codec = RecordCodec([string_column(10)])
    raw = codec.encode(("abc",))
    assert len(raw) == 10
    assert codec.decode(raw) == ("abc",)


def test_mixed_record_size():
    codec = RecordCodec([int_column(), string_column(12), float_column()])
    assert codec.record_size == 8 + 12 + 8


def test_too_long_string_raises():
    codec = RecordCodec([string_column(3)])
    with pytest.raises(InvalidRecordError):
        codec.encode(("toolong",))


def test_wrong_arity_raises():
    codec = RecordCodec([int_column(), int_column()])
    with pytest.raises(InvalidRecordError):
        codec.encode((1,))


def test_out_of_range_int_raises():
    codec = RecordCodec([int_column()])
    with pytest.raises(InvalidRecordError):
        codec.encode((2**70,))


def test_decode_wrong_length_raises():
    codec = RecordCodec([int_column()])
    with pytest.raises(InvalidRecordError):
        codec.decode(b"\x00" * 3)


def test_empty_schema_raises():
    with pytest.raises(InvalidRecordError):
        RecordCodec([])


def test_bad_width_for_int_raises():
    with pytest.raises(InvalidRecordError):
        ColumnSpec(ColumnType.INT64, width=4)


def test_bad_width_for_string_raises():
    with pytest.raises(InvalidRecordError):
        ColumnSpec(ColumnType.STRING, width=0)


@given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1),
                min_size=1, max_size=6))
def test_int_records_roundtrip_property(values):
    codec = RecordCodec([int_column()] * len(values))
    assert codec.decode(codec.encode(values)) == tuple(values)


@given(st.text(alphabet=st.characters(codec="ascii",
                                      categories=("L", "N")),
               max_size=16),
       st.integers(min_value=-(10**9), max_value=10**9),
       st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_mixed_records_roundtrip_property(text, number, value):
    codec = RecordCodec([string_column(16), int_column(), float_column()])
    decoded = codec.decode(codec.encode((text, number, value)))
    assert decoded == (text, number, float(value))
