"""Tests for the fixed-width record codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidRecordError
from repro.storage.codec import (
    ColumnSpec,
    ColumnType,
    RecordCodec,
    entry_codec,
    float_column,
    int_column,
    string_column,
)


def test_int_roundtrip():
    codec = RecordCodec([int_column(), int_column()])
    raw = codec.encode((7, -3))
    assert codec.decode(raw) == (7, -3)


def test_float_roundtrip():
    codec = RecordCodec([float_column()])
    assert codec.decode(codec.encode((3.25,))) == (3.25,)


def test_string_roundtrip_and_padding():
    codec = RecordCodec([string_column(10)])
    raw = codec.encode(("abc",))
    assert len(raw) == 10
    assert codec.decode(raw) == ("abc",)


def test_mixed_record_size():
    codec = RecordCodec([int_column(), string_column(12), float_column()])
    assert codec.record_size == 8 + 12 + 8


def test_too_long_string_raises():
    codec = RecordCodec([string_column(3)])
    with pytest.raises(InvalidRecordError):
        codec.encode(("toolong",))


def test_wrong_arity_raises():
    codec = RecordCodec([int_column(), int_column()])
    with pytest.raises(InvalidRecordError):
        codec.encode((1,))


def test_out_of_range_int_raises():
    codec = RecordCodec([int_column()])
    with pytest.raises(InvalidRecordError):
        codec.encode((2**70,))


def test_decode_wrong_length_raises():
    codec = RecordCodec([int_column()])
    with pytest.raises(InvalidRecordError):
        codec.decode(b"\x00" * 3)


def test_empty_schema_raises():
    with pytest.raises(InvalidRecordError):
        RecordCodec([])


def test_bad_width_for_int_raises():
    with pytest.raises(InvalidRecordError):
        ColumnSpec(ColumnType.INT64, width=4)


def test_bad_width_for_string_raises():
    with pytest.raises(InvalidRecordError):
        ColumnSpec(ColumnType.STRING, width=0)


# ----------------------------------------------------------------------
# batched APIs
# ----------------------------------------------------------------------
MIXED_ROWS = [
    (1, "ab", 0.5),
    (-7, "", 2.25),
    (2**40, "xyz", -1.0),
]


def mixed_codec():
    return RecordCodec([int_column(), string_column(4), float_column()])


def test_encode_many_matches_per_record_encode():
    codec = mixed_codec()
    assert codec.encode_many(MIXED_ROWS) == b"".join(
        codec.encode(row) for row in MIXED_ROWS
    )


def test_decode_many_roundtrip():
    codec = mixed_codec()
    raw = codec.encode_many(MIXED_ROWS)
    assert codec.decode_many(raw) == list(MIXED_ROWS)
    assert codec.decode_many(b"") == []


def test_decode_many_rejects_partial_record():
    codec = RecordCodec([int_column()])
    with pytest.raises(InvalidRecordError):
        codec.decode_many(b"\x00" * 12)


def test_encode_many_validates_every_row():
    codec = RecordCodec([int_column(), int_column()])
    with pytest.raises(InvalidRecordError):
        codec.encode_many([(1, 2), (3,)])


def test_strided_roundtrip_with_padding():
    codec = mixed_codec()
    pad = 4
    raw = codec.encode_strided(MIXED_ROWS, pad)
    assert len(raw) == len(MIXED_ROWS) * (pad + codec.record_size)
    # The pad bytes in front of every record are zeroed.
    stride = pad + codec.record_size
    for i in range(len(MIXED_ROWS)):
        assert raw[i * stride : i * stride + pad] == b"\x00" * pad
    assert codec.decode_strided(raw, len(MIXED_ROWS), pad) == list(MIXED_ROWS)


def test_decode_strided_respects_offset_and_count():
    codec = RecordCodec([int_column()])
    raw = b"\xff" * 6 + codec.encode_strided([(1,), (2,), (3,)], 2)
    assert codec.decode_strided(raw, 2, 2, offset=6) == [(1,), (2,)]


def test_entry_codec_roundtrip():
    codec = entry_codec("2q1d")
    entries = [(1, 2, 0.5), (3, 4, 1.5)]
    buf = bytearray(2 * codec.item_size)
    written = codec.pack_into(
        buf, 0, [v for e in entries for v in e], len(entries)
    )
    assert written == len(buf)
    assert list(codec.iter_unpack_from(bytes(buf), 0, 2)) == entries
    assert codec.unpack_flat_from(bytes(buf), 0, 2) == (1, 2, 0.5, 3, 4, 1.5)


def test_entry_codec_degenerate_zero_width():
    codec = entry_codec("0q0d")
    assert codec.item_size == 0
    assert codec.pack_into(bytearray(8), 0, [], 3) == 0
    assert list(codec.iter_unpack_from(b"", 0, 3)) == [(), (), ()]


def test_entry_codec_is_cached():
    assert entry_codec("3q2d") is entry_codec("3q2d")


@given(st.lists(st.tuples(st.integers(min_value=-(2**63),
                                      max_value=2**63 - 1),
                          st.floats(allow_nan=False, allow_infinity=False,
                                    width=32)),
                max_size=20),
       st.integers(min_value=0, max_value=8))
def test_strided_roundtrip_property(rows, pad):
    codec = RecordCodec([int_column(), float_column()])
    typed = [(i, float(f)) for i, f in rows]
    raw = codec.encode_strided(typed, pad)
    assert codec.decode_strided(raw, len(typed), pad) == typed


@given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1),
                min_size=1, max_size=6))
def test_int_records_roundtrip_property(values):
    codec = RecordCodec([int_column()] * len(values))
    assert codec.decode(codec.encode(values)) == tuple(values)


@given(st.text(alphabet=st.characters(codec="ascii",
                                      categories=("L", "N")),
               max_size=16),
       st.integers(min_value=-(10**9), max_value=10**9),
       st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_mixed_records_roundtrip_property(text, number, value):
    codec = RecordCodec([string_column(16), int_column(), float_column()])
    decoded = codec.decode(codec.encode((text, number, value)))
    assert decoded == (text, number, float(value))
