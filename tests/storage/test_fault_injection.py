"""Failure injection: storage errors must propagate, never corrupt.

A wrapper disk fails reads/writes on command; the structures above it
must surface :class:`StorageError` (or subclasses) rather than silently
losing or corrupting data, and must remain usable once the fault clears.
"""

import pytest

from repro.btree.tree import BPlusTree
from repro.errors import StorageError
from repro.rtree.packing import PackedRun, pack_rtree, sort_key
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap import RID, HeapFile
from repro.storage.codec import RecordCodec, int_column


class FaultyDisk(DiskManager):
    """A disk whose next N accesses fail on command."""

    def __init__(self):
        super().__init__()
        self.fail_reads = 0
        self.fail_writes = 0

    def read_page(self, page_id):
        if self.fail_reads > 0:
            self.fail_reads -= 1
            raise StorageError(f"injected read fault at page {page_id}")
        return super().read_page(page_id)

    def write_page(self, page_id, data):
        if self.fail_writes > 0:
            self.fail_writes -= 1
            raise StorageError(f"injected write fault at page {page_id}")
        super().write_page(page_id, data)


def test_read_fault_surfaces_and_recovers():
    disk = FaultyDisk()
    pool = BufferPool(disk, capacity=2)
    heap = HeapFile(pool, RecordCodec([int_column()]))
    rids = [heap.insert((i,)) for i in range(500)]
    pool.flush_all()
    pool.clear()

    disk.fail_reads = 1
    with pytest.raises(StorageError, match="injected read fault"):
        heap.fetch(rids[0])
    # Fault cleared: same fetch now succeeds with correct data.
    assert heap.fetch(rids[0]) == (0,)


def test_write_fault_during_flush_surfaces():
    disk = FaultyDisk()
    pool = BufferPool(disk, capacity=8)
    heap = HeapFile(pool, RecordCodec([int_column()]))
    heap.insert((1,))
    disk.fail_writes = 1
    with pytest.raises(StorageError, match="injected write fault"):
        pool.flush_all()


def test_btree_search_fault_then_recovery():
    disk = FaultyDisk()
    pool = BufferPool(disk, capacity=4)
    tree = BPlusTree(pool, 1)
    for i in range(2000):
        tree.insert((i,), RID(i, 0))
    pool.flush_all()
    pool.clear()

    disk.fail_reads = 1
    with pytest.raises(StorageError, match="injected read fault"):
        tree.search((1500,))
    assert tree.search((1500,)) == [RID(1500, 0)]
    tree.check_invariants()


def test_rtree_pack_write_fault_mid_build():
    disk = FaultyDisk()
    pool = BufferPool(disk, capacity=4)
    entries = sorted(
        [((i,), (1.0,)) for i in range(1, 3000)],
        key=lambda e: sort_key(e[0], 1),
    )
    disk.fail_writes = 1
    with pytest.raises(StorageError, match="injected write fault"):
        pack_rtree(pool, 1, [PackedRun(0, 1, 1, entries)])
        pool.flush_all()


def test_engine_query_fault_does_not_poison_engine():
    from repro.core.engine import CubetreeEngine
    from repro.query.slice import SliceQuery
    from repro.relational.view import ViewDefinition
    from repro.warehouse.tpcd import TPCDGenerator

    data = TPCDGenerator(scale_factor=0.0005, seed=19).generate()
    disk = FaultyDisk()
    engine = CubetreeEngine(data.schema, disk=disk, buffer_pages=16)
    engine.materialize([ViewDefinition("V_ps", ("partkey", "suppkey")),
                        ViewDefinition("V_none", ())], data.facts)
    engine.pool.flush_all()
    engine.pool.clear()

    q = SliceQuery((), ())
    disk.fail_reads = 1
    with pytest.raises(StorageError, match="injected read fault"):
        engine.query(q)
    # The engine keeps working after the transient fault.
    expected = float(sum(r[-1] for r in data.facts))
    assert engine.query(q).scalar() == expected
