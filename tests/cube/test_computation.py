"""Tests for sort-based cube computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.computation import CubeComputation
from repro.errors import SchemaError
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import ViewDefinition
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import Dimension, StarSchema


def small_schema():
    part = Dimension("part", "partkey", ("partkey", "brand"),
                     rows=[(i, (i - 1) % 3 + 1) for i in range(1, 10)])
    supp = Dimension("supplier", "suppkey", ("suppkey",),
                     rows=[(i,) for i in range(1, 5)])
    return StarSchema(("partkey", "suppkey"), "quantity",
                      {"partkey": part, "suppkey": supp})


def facts():
    return [
        (1, 1, 10), (1, 1, 5), (1, 2, 3),
        (2, 1, 7), (4, 2, 2), (4, 2, 1),
    ]


def v(name, attrs, aggs=None):
    if aggs is None:
        return ViewDefinition(name, tuple(attrs))
    return ViewDefinition(name, tuple(attrs), aggregates=tuple(aggs))


def test_compute_top_view_from_fact():
    comp = CubeComputation(small_schema())
    out = comp.execute(facts(), [v("V_ps", ("partkey", "suppkey"))])
    assert out["V_ps"] == [
        (1, 1, 15.0), (1, 2, 3.0), (2, 1, 7.0), (4, 2, 3.0),
    ]


def test_compute_super_aggregate():
    comp = CubeComputation(small_schema())
    out = comp.execute(facts(), [v("V_none", ())])
    assert out["V_none"] == [(28.0,)]


def test_child_computed_from_parent_equals_from_fact():
    comp = CubeComputation(small_schema())
    both = comp.execute(
        facts(), [v("V_ps", ("partkey", "suppkey")), v("V_p", ("partkey",))]
    )
    solo = comp.execute(facts(), [v("V_p", ("partkey",))])
    assert both["V_p"] == solo["V_p"]
    assert both["V_p"] == [(1, 18.0), (2, 7.0), (4, 3.0)]


def test_plan_uses_smallest_parent():
    comp = CubeComputation(small_schema())
    views = [
        v("V_ps", ("partkey", "suppkey")),
        v("V_p", ("partkey",)),
        v("V_none", ()),
    ]
    steps = {s.view.name: s.parent for s in comp.plan(views, 1000)}
    assert steps["V_ps"] is None
    assert steps["V_p"] == "V_ps"
    assert steps["V_none"] == "V_p"  # smallest ancestor


def test_plan_tie_break_is_stable_by_name():
    """Equal-size parent candidates resolve by view name, not input order."""
    import itertools

    part = Dimension("part", "partkey", ("partkey",),
                     rows=[(i,) for i in range(1, 5)])
    supp = Dimension("supplier", "suppkey", ("suppkey",),
                     rows=[(i,) for i in range(1, 5)])
    schema = StarSchema(("partkey", "suppkey"), "quantity",
                        {"partkey": part, "suppkey": supp})
    comp = CubeComputation(schema)
    views = [
        v("V_ps", ("partkey", "suppkey")),
        v("V_p", ("partkey",)),
        v("V_s", ("suppkey",)),
        v("V_none", ()),
    ]
    # V_p and V_s have identical Cardenas estimates (4 distinct each), so
    # V_none's parent is a tie — every supply order must pick the same one.
    parents = set()
    for perm in itertools.permutations(views):
        steps = {s.view.name: s.parent for s in comp.plan(list(perm), 1000)}
        parents.add(steps["V_none"])
    assert parents == {"V_p"}


def test_plan_describe():
    comp = CubeComputation(small_schema())
    steps = comp.plan([v("V_ps", ("partkey", "suppkey"))], 100)
    assert steps[0].describe() == "V_ps <- F"


def test_hierarchy_view_from_fact():
    schema = small_schema()
    brand = Hierarchy.from_dimension(schema.dimensions["partkey"], "brand")
    comp = CubeComputation(schema, {"brand": brand})
    out = comp.execute(facts(), [v("V_brand", ("brand",))])
    # parts 1,4 -> brand 1; part 2 -> brand 2
    assert out["V_brand"] == [(1, 21.0), (2, 7.0)]


def test_hierarchy_view_from_parent():
    schema = small_schema()
    brand = Hierarchy.from_dimension(schema.dimensions["partkey"], "brand")
    comp = CubeComputation(schema, {"brand": brand})
    out = comp.execute(
        facts(),
        [v("V_ps", ("partkey", "suppkey")), v("V_brand", ("brand",))],
    )
    assert out["V_brand"] == [(1, 21.0), (2, 7.0)]
    plan = comp.plan(
        [v("V_ps", ("partkey", "suppkey")), v("V_brand", ("brand",))],
        len(facts()),
    )
    parents = {s.view.name: s.parent for s in plan}
    assert parents["V_brand"] == "V_ps"


def test_unknown_attribute_raises():
    comp = CubeComputation(small_schema())
    with pytest.raises(SchemaError):
        comp.execute(facts(), [v("V_bad", ("nope",))])


def test_multiple_aggregates():
    comp = CubeComputation(small_schema())
    aggs = (AggSpec(AggFunc.SUM, "quantity"),
            AggSpec(AggFunc.COUNT),
            AggSpec(AggFunc.AVG, "quantity"))
    out = comp.execute(facts(), [v("V_p", ("partkey",), aggs)])
    # part 1: sum 18, count 3, avg state (18, 3)
    assert out["V_p"][0] == (1, 18.0, 3.0, 18.0, 3.0)


def test_min_max_aggregates_derive_correctly():
    comp = CubeComputation(small_schema())
    aggs = (AggSpec(AggFunc.MIN, "quantity"), AggSpec(AggFunc.MAX, "quantity"))
    out = comp.execute(
        facts(),
        [v("V_ps", ("partkey", "suppkey"), aggs), v("V_p", ("partkey",), aggs)],
    )
    assert out["V_p"] == [(1, 3.0, 10.0), (2, 7.0, 7.0), (4, 1.0, 2.0)]


def test_mismatched_aggregates_fall_back_to_fact():
    comp = CubeComputation(small_schema())
    parent = v("V_ps", ("partkey", "suppkey"))
    child = v("V_p", ("partkey",),
              aggs := (AggSpec(AggFunc.MIN, "quantity"),))
    plan = comp.plan([parent, child], len(facts()))
    parents = {s.view.name: s.parent for s in plan}
    assert parents["V_p"] is None  # different aggregates: recompute from F


def test_compute_one_from_fact():
    comp = CubeComputation(small_schema())
    rows = comp.compute_one_from_fact(facts(), v("V_s", ("suppkey",)))
    assert rows == [(1, 22.0), (2, 6.0)]


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 9), st.integers(1, 4), st.integers(1, 50)),
    max_size=200,
))
def test_parent_derivation_invariant_property(fact_rows):
    """Any view computed via a parent equals the same view from facts."""
    comp = CubeComputation(small_schema())
    views = [v("V_ps", ("partkey", "suppkey")),
             v("V_s", ("suppkey",)), v("V_none", ())]
    chained = comp.execute(fact_rows, views)
    for view in views[1:]:
        solo = comp.execute(fact_rows, [view])
        assert chained[view.name] == solo[view.name]


def test_multiple_measures_aggregate_independently():
    """Views can aggregate different measure columns (extendedprice)."""
    from repro.warehouse.tpcd import TPCDGenerator

    gen = TPCDGenerator(scale_factor=0.0005, seed=9, include_price=True)
    data = gen.generate()
    comp = CubeComputation(data.schema)
    view = ViewDefinition(
        "V_s", ("suppkey",),
        aggregates=(AggSpec(AggFunc.SUM, "quantity"),
                    AggSpec(AggFunc.SUM, "extendedprice"),
                    AggSpec(AggFunc.COUNT)),
    )
    rows = comp.execute(data.facts, [view])["V_s"]
    expected = {}
    for partkey, suppkey, _c, quantity, price in data.facts:
        q, p, n = expected.get(suppkey, (0.0, 0.0, 0))
        expected[suppkey] = (q + quantity, p + price, n + 1)
    assert rows == [
        (s,) + tuple(map(float, expected[s])) for s in sorted(expected)
    ]


def test_non_measure_aggregate_rejected():
    from repro.warehouse.tpcd import TPCDGenerator

    data = TPCDGenerator(scale_factor=0.0005, seed=9).generate()
    comp = CubeComputation(data.schema)
    view = ViewDefinition(
        "V_bad", ("suppkey",),
        aggregates=(AggSpec(AggFunc.SUM, "partkey"),),
    )
    with pytest.raises(SchemaError):
        comp.execute(data.facts, [view])
