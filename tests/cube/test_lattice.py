"""Tests for the cube lattice."""

import pytest

from repro.cube.lattice import CubeLattice
from repro.errors import SchemaError

PSC = ("partkey", "suppkey", "custkey")


def lattice():
    return CubeLattice(PSC, hierarchies={"brand": "partkey"})


def test_num_nodes():
    assert lattice().num_nodes() == 8
    assert len(list(lattice().nodes())) == 8


def test_nodes_ordered_top_first():
    nodes = list(lattice().nodes())
    assert nodes[0] == frozenset(PSC)
    assert nodes[-1] == frozenset()


def test_top_and_bottom():
    lat = lattice()
    assert lat.top == frozenset(PSC)
    assert lat.bottom == frozenset()


def test_duplicate_base_attrs_raise():
    with pytest.raises(SchemaError):
        CubeLattice(("a", "a"))


def test_unknown_hierarchy_source_raises():
    with pytest.raises(SchemaError):
        CubeLattice(("a",), hierarchies={"h": "b"})


def test_canonical_order():
    lat = lattice()
    assert lat.canonical_order(frozenset(("custkey", "partkey"))) == (
        "partkey", "custkey",
    )
    assert lat.canonical_order(frozenset(("brand", "custkey"))) == (
        "brand", "custkey",
    )
    with pytest.raises(SchemaError):
        lat.canonical_order(frozenset(("nope",)))


def test_derives_from_subset():
    lat = lattice()
    assert lat.derives_from(("partkey",), PSC)
    assert lat.derives_from((), ("partkey",))
    assert not lat.derives_from(("partkey", "custkey"), ("partkey",))


def test_derives_from_hierarchy():
    lat = lattice()
    assert lat.derives_from(("brand",), ("partkey", "suppkey"))
    assert lat.derives_from(("brand", "suppkey"), PSC)
    # brand cannot be rolled back down to partkey
    assert not lat.derives_from(("partkey",), ("brand",))
    # brand supports itself
    assert lat.derives_from(("brand",), ("brand",))


def test_resolve():
    lat = lattice()
    assert lat.resolve(("brand", "custkey")) == frozenset(
        ("partkey", "custkey")
    )
    with pytest.raises(SchemaError):
        lat.resolve(("nope",))


def test_parents_and_children():
    lat = lattice()
    node = frozenset(("partkey",))
    parents = lat.parents(node)
    assert frozenset(("partkey", "suppkey")) in parents
    assert frozenset(("partkey", "custkey")) in parents
    assert len(parents) == 2
    assert lat.children(frozenset(("partkey", "suppkey"))) == [
        frozenset(("suppkey",)),
        frozenset(("partkey",)),
    ] or len(lat.children(frozenset(("partkey", "suppkey")))) == 2


def test_ancestors_descendants():
    lat = lattice()
    node = frozenset(("partkey",))
    ancestors = lat.ancestors(node)
    assert frozenset(PSC) in ancestors
    assert len(ancestors) == 3
    descendants = lat.descendants(node)
    assert descendants == [frozenset()]
