"""Tests for the selection cost model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cube.cost import (
    cardenas_estimate,
    estimate_view_size,
    query_cost,
)


def test_cardenas_degenerate_cases():
    assert cardenas_estimate(100, 0) == 0.0
    assert cardenas_estimate(0, 10) == 0.0
    assert cardenas_estimate(1, 10) == 1.0


def test_cardenas_small_domain_saturates():
    # 10 distinct values, many draws -> ~10 distinct observed
    assert cardenas_estimate(10, 10_000) == pytest.approx(10.0)


def test_cardenas_large_domain_near_row_count():
    # domain >> rows -> almost every row is distinct
    assert cardenas_estimate(1e12, 1000) == pytest.approx(1000.0, rel=1e-3)


@given(st.integers(1, 10**6), st.integers(0, 10**6))
def test_cardenas_bounds_property(domain, rows):
    est = cardenas_estimate(domain, rows)
    assert 0.0 <= est <= min(domain, rows) + 1e-6


def test_estimate_view_size_super_aggregate():
    assert estimate_view_size((), {}, 1000) == 1.0


def test_estimate_view_size_products():
    counts = {"a": 10.0, "b": 20.0}
    est = estimate_view_size(("a", "b"), counts, 10**6)
    assert est == pytest.approx(200.0, rel=1e-6)


def test_estimate_view_size_with_correlated_domain():
    counts = {"p": 200_000.0, "s": 10_000.0}
    uncorrelated = estimate_view_size(("p", "s"), counts, 6_000_000)
    correlated = estimate_view_size(
        ("p", "s"), counts, 6_000_000,
        correlated_domains={frozenset({"p", "s"}): 800_000.0},
    )
    assert correlated < uncorrelated
    assert correlated == pytest.approx(
        800_000 * (1 - math.exp(-6_000_000 / 800_000)), rel=1e-2
    )


def test_query_cost_no_index_is_scan():
    assert query_cost(1000.0, ("a",), [], {"a": 10.0}) == 1000.0


def test_query_cost_with_matching_prefix():
    cost = query_cost(1000.0, ("a",), [("a", "b")], {"a": 10.0, "b": 5.0})
    assert cost == pytest.approx(100.0)


def test_query_cost_full_prefix():
    cost = query_cost(
        1000.0, ("a", "b"), [("a", "b")], {"a": 10.0, "b": 5.0}
    )
    assert cost == pytest.approx(20.0)


def test_query_cost_prefix_stops_at_unbound_attr():
    # index (a, b): query binds only b -> no usable prefix
    cost = query_cost(1000.0, ("b",), [("a", "b")], {"a": 10.0, "b": 5.0})
    assert cost == 1000.0


def test_query_cost_picks_best_index():
    cost = query_cost(
        1000.0, ("b",), [("a", "b"), ("b", "a")], {"a": 10.0, "b": 5.0}
    )
    assert cost == pytest.approx(200.0)


def test_query_cost_never_below_one_tuple():
    cost = query_cost(10.0, ("a",), [("a",)], {"a": 1000.0})
    assert cost == 1.0
