"""Tests for GHRU 1-greedy view/index selection.

The headline test reproduces the paper's Sec. 3 setup: at TPC-D SF 1
statistics the algorithm must select
``V = {psc, ps, c, s, p, none}`` and three composite indexes on the apex
view whose leading attributes cover all three dimensions.
"""

from repro.cube.lattice import CubeLattice
from repro.cube.selection import (
    select_views_and_indexes,
    slice_query_types,
)

PSC = ("partkey", "suppkey", "custkey")
TPCD_DISTINCT = {
    "partkey": 200_000.0,
    "suppkey": 10_000.0,
    "custkey": 150_000.0,
}
TPCD_FACTS = 6_001_215
#: TPC-D PARTSUPP: each part has 4 suppliers -> 800k (part, supp) pairs.
TPCD_CORRELATED = {frozenset({"partkey", "suppkey"}): 800_000.0}


def run_selection(**kwargs):
    lattice = CubeLattice(PSC)
    return select_views_and_indexes(
        lattice, TPCD_DISTINCT, TPCD_FACTS,
        correlated_domains=TPCD_CORRELATED, **kwargs,
    )


def test_number_of_slice_query_types_is_27():
    """Paper Sec. 3.1: summing 2^|V| over all views gives 27."""
    assert len(slice_query_types(CubeLattice(PSC))) == 27


def test_paper_view_set_selected():
    sel = run_selection(max_structures=9)
    expected_views = {
        frozenset(PSC),
        frozenset(("partkey", "suppkey")),
        frozenset(("custkey",)),
        frozenset(("suppkey",)),
        frozenset(("partkey",)),
        frozenset(),
    }
    assert set(sel.view_sets) == expected_views


def test_paper_index_set_shape():
    """Three composite indexes on the apex view, one per leading attr."""
    sel = run_selection(max_structures=9)
    assert len(sel.indexes) == 3
    assert all(len(key) == 3 for key in sel.indexes)
    assert {key[0] for key in sel.indexes} == set(PSC)
    # Together the three indexes expose every 2-subset as a 2-prefix.
    two_prefixes = {frozenset(key[:2]) for key in sel.indexes}
    assert len(two_prefixes) == 3


def test_pc_and_sc_views_not_selected():
    """The near-|F|-sized 2-way views are correctly skipped."""
    sel = run_selection(max_structures=9)
    assert frozenset(("partkey", "custkey")) not in sel.view_sets
    assert frozenset(("suppkey", "custkey")) not in sel.view_sets


def test_selection_reduces_cost_monotonically():
    sel = run_selection()
    assert sel.total_cost < sel.initial_cost
    assert sel.initial_cost == 27 * TPCD_FACTS


def test_space_budget_respected():
    budget = 2.0 * TPCD_FACTS
    sel = run_selection(space_budget_tuples=budget)
    assert sel.space_used <= budget


def test_tight_budget_selects_small_views_only():
    sel = run_selection(space_budget_tuples=1_500_000)
    assert frozenset(PSC) not in sel.view_sets
    assert frozenset(("partkey", "suppkey")) in sel.view_sets


def test_max_structures_cap():
    sel = run_selection(max_structures=2)
    assert len(sel.views) + len(sel.indexes) <= 2


def test_steps_recorded():
    sel = run_selection(max_structures=3)
    assert len(sel.steps) == len(sel.views) + len(sel.indexes)


def test_uncorrelated_statistics_reject_ps_view():
    """Without PARTSUPP correlation, |ps| ~ |F| and ps loses its value."""
    lattice = CubeLattice(PSC)
    sel = select_views_and_indexes(
        lattice, TPCD_DISTINCT, TPCD_FACTS, max_structures=9
    )
    ps = frozenset(("partkey", "suppkey"))
    if ps in sel.view_sets:
        # If picked at all it must be nearly useless: cost barely moved
        # relative to the correlated setting.
        correlated = run_selection(max_structures=9)
        assert sel.total_cost >= correlated.total_cost


# ----------------------------------------------------------------------
# HRU96 views-only greedy (the baseline GHRU extends)
# ----------------------------------------------------------------------
def test_hru_greedy_picks_k_views():
    from repro.cube.selection import select_views_hru

    lattice = CubeLattice(PSC)
    sel = select_views_hru(lattice, TPCD_DISTINCT, TPCD_FACTS, k=3,
                           correlated_domains=TPCD_CORRELATED)
    assert len(sel.views) <= 3
    assert sel.total_cost < sel.initial_cost
    assert sel.indexes == []


def test_hru_greedy_prefers_small_useful_views():
    from repro.cube.selection import select_views_hru

    lattice = CubeLattice(PSC)
    sel = select_views_hru(lattice, TPCD_DISTINCT, TPCD_FACTS, k=4,
                           correlated_domains=TPCD_CORRELATED)
    # The correlated ps view is the classic first pick: near-|F| benefit
    # for ~13% of |F| space.
    assert frozenset(("partkey", "suppkey")) in sel.view_sets


def test_hru_greedy_stops_when_no_benefit():
    from repro.cube.selection import select_views_hru

    lattice = CubeLattice(("a",))
    sel = select_views_hru(lattice, {"a": 2.0}, 100, k=10)
    # Only 2 lattice nodes; greedy must stop well before k.
    assert len(sel.views) <= 2


def test_hru_monotone_in_k():
    from repro.cube.selection import select_views_hru

    lattice = CubeLattice(PSC)
    costs = []
    for k in (1, 2, 4):
        sel = select_views_hru(lattice, TPCD_DISTINCT, TPCD_FACTS, k=k,
                               correlated_domains=TPCD_CORRELATED)
        costs.append(sel.total_cost)
    assert costs[0] >= costs[1] >= costs[2]
