"""Tests for the TPC-D-style generator."""

import pytest

from repro.warehouse.tpcd import (
    LINEITEMS_PER_SF,
    MAX_QUANTITY,
    NUM_BRANDS,
    TPCDGenerator,
)


def test_cardinality_ratios():
    gen = TPCDGenerator(scale_factor=0.01, seed=1)
    assert gen.num_parts == 2000
    assert gen.num_suppliers == 100
    assert gen.num_customers == 1500
    assert gen.num_facts == round(LINEITEMS_PER_SF * 0.01)


def test_deterministic_generation():
    a = TPCDGenerator(scale_factor=0.001, seed=7).generate()
    b = TPCDGenerator(scale_factor=0.001, seed=7).generate()
    assert a.facts == b.facts


def test_different_seeds_differ():
    a = TPCDGenerator(scale_factor=0.001, seed=1).generate()
    b = TPCDGenerator(scale_factor=0.001, seed=2).generate()
    assert a.facts != b.facts


def test_fact_rows_within_domains():
    gen = TPCDGenerator(scale_factor=0.001, seed=3)
    data = gen.generate()
    for partkey, suppkey, custkey, quantity in data.facts[:500]:
        assert 1 <= partkey <= gen.num_parts
        assert 1 <= suppkey <= gen.num_suppliers
        assert 1 <= custkey <= gen.num_customers
        assert 1 <= quantity <= MAX_QUANTITY


def test_schema_contents():
    data = TPCDGenerator(scale_factor=0.001, seed=3).generate()
    schema = data.schema
    assert schema.fact_keys == ("partkey", "suppkey", "custkey")
    assert schema.measure == "quantity"
    assert schema.distinct_count("brand") <= NUM_BRANDS


def test_increment_size_and_independence():
    gen = TPCDGenerator(scale_factor=0.001, seed=3)
    base = gen.generate()
    inc = gen.generate_increment(fraction=0.1)
    assert len(inc) == round(len(base.facts) * 0.1)
    assert inc != base.facts[: len(inc)]


def test_increment_deterministic():
    gen = TPCDGenerator(scale_factor=0.001, seed=3)
    assert gen.generate_increment() == gen.generate_increment()
    assert gen.generate_increment(stream="day2") != gen.generate_increment()


def test_include_time_adds_dimension_and_key():
    gen = TPCDGenerator(scale_factor=0.001, seed=3, include_time=True)
    data = gen.generate()
    assert data.schema.fact_keys == (
        "partkey", "suppkey", "custkey", "timekey"
    )
    row = data.facts[0]
    assert len(row) == 5
    hierarchy = data.hierarchy("timekey", "year")
    assert hierarchy.roll_up(1) == 1
    assert hierarchy.roll_up(366) == 2


def test_partsupp_correlation():
    """Each part draws its suppliers from a fixed set of 4 (TPC-D PARTSUPP)."""
    gen = TPCDGenerator(scale_factor=0.01, seed=3)
    data = gen.generate()
    eligible = {p: set(gen.eligible_suppliers(p))
                for p in range(1, gen.num_parts + 1)}
    pairs = set()
    for partkey, suppkey, _c, _q in data.facts:
        assert suppkey in eligible[partkey]
        pairs.add((partkey, suppkey))
    # Distinct (part, supplier) pairs are bounded by 4 * parts, far below |F|.
    assert len(pairs) <= 4 * gen.num_parts
    assert len(pairs) < len(data.facts) / 2


def test_eligible_suppliers_in_range():
    gen = TPCDGenerator(scale_factor=0.01, seed=3)
    for partkey in (1, 5, gen.num_parts):
        supps = gen.eligible_suppliers(partkey)
        assert len(supps) == 4
        assert all(1 <= s <= gen.num_suppliers for s in supps)


def test_hierarchy_access():
    data = TPCDGenerator(scale_factor=0.001, seed=3).generate()
    brand = data.hierarchy("partkey", "brand")
    assert 1 <= brand.roll_up(1) <= NUM_BRANDS


def test_bad_scale_factor_raises():
    with pytest.raises(ValueError):
        TPCDGenerator(scale_factor=0)


def test_bad_increment_fraction_raises():
    gen = TPCDGenerator(scale_factor=0.001)
    with pytest.raises(ValueError):
        gen.generate_increment(fraction=0)


def test_include_price_adds_measure_column():
    gen = TPCDGenerator(scale_factor=0.001, seed=3, include_price=True)
    data = gen.generate()
    assert data.schema.measures == ("quantity", "extendedprice")
    assert data.schema.fact_columns == (
        "partkey", "suppkey", "custkey", "quantity", "extendedprice",
    )
    for partkey, _s, _c, quantity, price in data.facts[:200]:
        assert price == quantity * gen.part_price(partkey)


def test_price_with_time_dimension_column_order():
    gen = TPCDGenerator(scale_factor=0.001, seed=3,
                        include_time=True, include_price=True)
    data = gen.generate()
    assert data.schema.fact_columns == (
        "partkey", "suppkey", "custkey", "timekey",
        "quantity", "extendedprice",
    )
    row = data.facts[0]
    assert len(row) == 6
