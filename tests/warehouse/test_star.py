"""Tests for the star-schema model and hierarchies."""

import pytest

from repro.errors import SchemaError
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import Dimension, StarSchema


def part_dim():
    return Dimension(
        "part", "partkey", ("partkey", "name", "brand"),
        rows=[(1, "a", 10), (2, "b", 10), (3, "c", 20)],
    )


def schema():
    return StarSchema(
        fact_keys=("partkey",),
        measure="quantity",
        dimensions={"partkey": part_dim()},
    )


def test_dimension_key_must_be_first():
    with pytest.raises(SchemaError):
        Dimension("part", "partkey", ("name", "partkey"))


def test_dimension_lookups():
    dim = part_dim()
    assert len(dim) == 3
    assert dim.attribute_index("brand") == 2
    assert dim.column_map("brand") == {1: 10, 2: 10, 3: 20}
    assert dim.distinct_count("brand") == 2


def test_dimension_unknown_attribute():
    with pytest.raises(SchemaError):
        part_dim().attribute_index("nope")


def test_schema_requires_dimensions_for_keys():
    with pytest.raises(SchemaError):
        StarSchema(("partkey", "suppkey"), "quantity",
                   {"partkey": part_dim()})


def test_schema_fact_columns():
    assert schema().fact_columns == ("partkey", "quantity")


def test_schema_distinct_count():
    s = schema()
    assert s.distinct_count("partkey") == 3
    assert s.distinct_count("brand") == 2
    with pytest.raises(SchemaError):
        s.distinct_count("nope")


def test_schema_groupable_attributes():
    assert schema().groupable_attributes() == ("partkey", "name", "brand")


def test_schema_key_domain():
    assert list(schema().key_domain("partkey")) == [1, 2, 3]


def test_hierarchy_from_dimension():
    h = Hierarchy.from_dimension(part_dim(), "brand")
    assert h.roll_up(1) == 10
    assert h.roll_up(3) == 20
    assert h.distinct_count() == 2


def test_hierarchy_rejects_non_integer_attribute():
    with pytest.raises(SchemaError):
        Hierarchy.from_dimension(part_dim(), "name")


def test_hierarchy_unknown_key():
    h = Hierarchy.from_dimension(part_dim(), "brand")
    with pytest.raises(SchemaError):
        h.roll_up(99)


def test_hierarchy_roll_up_rows():
    h = Hierarchy.from_dimension(part_dim(), "brand")
    rows = [(1, 5), (3, 7)]
    assert list(h.roll_up_rows(rows, 0)) == [(10, 5), (20, 7)]
