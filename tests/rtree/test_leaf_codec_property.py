"""Round-trip property tests of the compressed leaf codec.

A Cubetree leaf stores only its view's ``k`` meaningful coordinates (the
paper's leaf compression); encode→decode must be the identity for every
arity from 0 (the super aggregate) to the max arity a page can carry,
including full-capacity leaves and int64-extreme coordinates.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.constants import PAGE_SIZE
from repro.rtree.node import RLeafNode, leaf_capacity
from repro.rtree.packing import PackedRun, pack_rtree, sort_key
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

INT64_MAX = 2**63 - 1


@st.composite
def leaves(draw):
    """A populated leaf of random arity/width, up to full capacity."""
    arity = draw(st.integers(min_value=0, max_value=6))
    n_aggs = draw(st.integers(min_value=1, max_value=8))
    capacity = leaf_capacity(arity, n_aggs)
    coords = st.integers(min_value=1, max_value=INT64_MAX)
    count = draw(st.integers(min_value=0, max_value=min(capacity, 64)))
    node = RLeafNode(view_id=arity, arity=arity, n_aggs=n_aggs)
    node.next_leaf = draw(st.one_of(st.just(-1), st.integers(0, 2**40)))
    for _ in range(count):
        node.points.append(tuple(draw(coords) for _ in range(arity)))
        node.values.append(
            tuple(
                draw(
                    st.floats(
                        allow_nan=False,
                        allow_infinity=False,
                        width=64,
                    )
                )
                for _ in range(n_aggs)
            )
        )
    return node


def _assert_identical(a: RLeafNode, b: RLeafNode) -> None:
    assert b.view_id == a.view_id
    assert b.arity == a.arity
    assert b.n_aggs == a.n_aggs
    assert b.next_leaf == a.next_leaf
    assert b.points == a.points
    assert b.values == a.values


@given(leaves())
@settings(max_examples=150, deadline=None)
def test_leaf_round_trip_is_identity(node):
    raw = node.to_bytes()
    assert len(raw) == PAGE_SIZE
    _assert_identical(node, RLeafNode.from_bytes(raw))


@given(leaves())
@settings(max_examples=50, deadline=None)
def test_leaf_double_round_trip_is_stable(node):
    once = RLeafNode.from_bytes(node.to_bytes())
    twice = RLeafNode.from_bytes(once.to_bytes())
    _assert_identical(once, twice)


@pytest.mark.parametrize("arity,n_aggs", [(0, 1), (0, 8), (1, 1), (6, 8)])
def test_full_capacity_leaf_round_trips(arity, n_aggs):
    """The max-arity / max-width boundary: a leaf packed to capacity must
    fit the page exactly and survive the round trip."""
    capacity = leaf_capacity(arity, n_aggs)
    node = RLeafNode(view_id=arity, arity=arity, n_aggs=n_aggs)
    for i in range(capacity):
        node.points.append(tuple(INT64_MAX - i - j for j in range(arity)))
        node.values.append(tuple(float(i + j) for j in range(n_aggs)))
    raw = node.to_bytes()
    _assert_identical(node, RLeafNode.from_bytes(raw))


def test_super_aggregate_leaf_round_trips():
    """Arity 0: no coordinates at all, just the aggregate vector."""
    node = RLeafNode(view_id=0, arity=0, n_aggs=3)
    node.points.append(())
    node.values.append((1.5, -2.0, 1e300))
    decoded = RLeafNode.from_bytes(node.to_bytes())
    _assert_identical(node, decoded)
    assert decoded.padded_point((), 3) == (0, 0, 0)


@given(
    st.lists(
        st.tuples(st.integers(1, 1000), st.integers(1, 1000)),
        unique=True, min_size=1, max_size=120,
    )
)
@settings(max_examples=40, deadline=None)
def test_single_view_packed_tree_round_trips_through_disk(points):
    """End to end: pack a single-view tree, flush every page, drop the
    cache, and read the identical entries back through the codec."""
    dims = 2
    points = sorted(points, key=lambda p: sort_key(p, dims))
    entries = [(p, (float(i),)) for i, p in enumerate(points)]
    run = PackedRun(view_id=2, arity=2, n_aggs=1, entries=entries)

    pool = BufferPool(DiskManager(), capacity=64)
    tree = pack_rtree(pool, dims, [run])
    pool.flush_all()
    pool.clear()  # cold cache: everything must come back via from_bytes

    got = [(point, values) for _vid, point, values in tree.scan_points()]
    assert got == entries
