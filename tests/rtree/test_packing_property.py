"""Property tests of the packing bulk loader (paper Sec. 2.3-2.4).

For arbitrary per-view sorted runs, a packed tree must:

* yield its points in reversed-coordinate sort order when scanned;
* fill every leaf of a view's run to capacity except the run's last leaf;
* keep each view in one contiguous run of leaves, runs ascending by arity;
* write its leaves in ascending page order (the sequential-I/O claim);
* pass the structural verifier (``analysis/fsck.check_tree``).
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.analysis.fsck import check_tree
from repro.rtree.node import leaf_capacity
from repro.rtree.packing import PackedRun, pack_rtree, sort_key
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


@st.composite
def packing_inputs(draw):
    """dims + per-view sorted runs (unique positive points, arity==view_id)."""
    dims = draw(st.integers(min_value=1, max_value=4))
    arities = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=dims),
                unique=True, min_size=1, max_size=dims + 1,
            )
        )
    )
    runs = []
    for arity in arities:
        # High n_aggs shrinks leaf capacity, so moderate entry counts
        # still produce multi-leaf runs.
        n_aggs = draw(st.integers(min_value=1, max_value=8))
        if arity == 0:
            points = [()]
        else:
            points = draw(
                st.lists(
                    st.tuples(
                        *[st.integers(min_value=1, max_value=30)] * arity
                    ),
                    unique=True, min_size=1, max_size=150,
                )
            )
            points.sort(key=lambda p: sort_key(p, dims))
        entries = [
            (point, tuple(float(i + j) for j in range(n_aggs)))
            for i, point in enumerate(points)
        ]
        runs.append(PackedRun(arity, arity, n_aggs, entries))
    return dims, runs


@given(packing_inputs())
@settings(max_examples=60, deadline=None)
def test_pack_rtree_preserves_order_and_packs_leaves_full(case):
    dims, runs = case
    pool = BufferPool(DiskManager(), capacity=64)
    tree = pack_rtree(pool, dims, runs, validate=True)

    total = sum(len(run.entries) for run in runs)
    assert tree.count == total

    # 1. Reversed-coordinate sort order over the whole leaf chain, and
    #    exactly the input points come back.
    scanned = list(tree.scan_points())
    keys = [sort_key(point, dims) for _vid, point, _vals in scanned]
    assert keys == sorted(keys)
    expected = {
        (run.view_id, tuple(point) + (0,) * (dims - run.arity)): values
        for run in runs
        for point, values in run.entries
    }
    got = {(vid, point): values for vid, point, values in scanned}
    assert got == expected

    # 2. Contiguous view runs, ascending by arity, with every non-final
    #    leaf of a run filled to its compressed capacity.
    leaves = list(tree.scan_leaf_chain())
    run_order = []
    for leaf in leaves:
        if not run_order or run_order[-1] != leaf.view_id:
            run_order.append(leaf.view_id)
    assert run_order == sorted(run_order), "view runs interleaved"
    assert run_order == [run.view_id for run in runs if run.entries]
    by_view = {}
    for leaf in leaves:
        by_view.setdefault(leaf.view_id, []).append(leaf)
    for view_id, view_leaves in by_view.items():
        for leaf in view_leaves[:-1]:
            assert len(leaf) == leaf_capacity(leaf.arity, leaf.n_aggs), (
                f"non-final leaf of view {view_id} is not full"
            )

    # 3. Leaves were written to ascending page ids (sequential output).
    assert tree.leaf_page_ids == sorted(tree.leaf_page_ids)

    # 4. The independent structural verifier agrees.
    report = check_tree(
        tree,
        expected_views={
            run.view_id: (run.arity, run.n_aggs) for run in runs
        },
        packed=True,
    )
    assert report.ok, report.format()
    assert report.entries_checked == total


@given(packing_inputs())
@settings(max_examples=20, deadline=None)
def test_packed_tree_survives_cold_cache(case):
    """Order/full-leaf properties hold after flushing + dropping the pool
    (i.e. they are on-disk properties, not in-memory artifacts)."""
    dims, runs = case
    pool = BufferPool(DiskManager(), capacity=64)
    tree = pack_rtree(pool, dims, runs, validate=True)
    pool.flush_all()
    pool.clear()

    keys = [
        sort_key(point, dims) for _vid, point, _vals in tree.scan_points()
    ]
    assert keys == sorted(keys)
    report = check_tree(
        tree,
        expected_views={
            run.view_id: (run.arity, run.n_aggs) for run in runs
        },
        packed=True,
    )
    assert report.ok, report.format()
