"""The v3 columnar leaf format and the explicit empty-run extent.

Covers the format gate, encode/decode round trips (including arity 0
and int64-extreme coordinates), corrupt-page decoding, the row-vs-
columnar pack differential (identical entries, fewer pages), fsck's
columnar leaf walk, and the ``EMPTY_EXTENT`` sentinel for zero-row
views.
"""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.analysis.fsck import check_tree
from repro.constants import PAGE_SIZE
from repro.errors import InvalidRecordError, StorageError
from repro.rtree.node import (
    LEAF_COLUMNAR_TYPE,
    LEAF_TYPE,
    RLeafNode,
    columnar_leaf_size,
    leaf_format,
    set_leaf_format,
)
from repro.rtree.packing import PackedRun, pack_rtree, sort_key
from repro.rtree.tree import EMPTY_EXTENT
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

INT64_MAX = 2**63 - 1


@pytest.fixture(autouse=True)
def _reset_leaf_format():
    yield
    set_leaf_format(None)


def make_pool(capacity=256):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def two_view_runs(dims=3, n_1d=600, n_2d=24):
    one_d = [((i * 7,), (float(i),)) for i in range(1, n_1d + 1)]
    two_d = [
        ((x, y), (float(x + y),))
        for x in range(1, n_2d + 1)
        for y in range(1, n_2d + 1)
    ]
    return [
        PackedRun(1, 1, 1, sorted(one_d, key=lambda e: sort_key(e[0], dims))),
        PackedRun(2, 2, 1, sorted(two_d, key=lambda e: sort_key(e[0], dims))),
    ]


# ----------------------------------------------------------------------
# gate
# ----------------------------------------------------------------------
def test_format_gate_defaults_to_row(monkeypatch):
    monkeypatch.delenv("REPRO_LEAF_FORMAT", raising=False)
    assert leaf_format() == "row"


def test_format_gate_env(monkeypatch):
    monkeypatch.setenv("REPRO_LEAF_FORMAT", "columnar")
    assert leaf_format() == "columnar"
    set_leaf_format("row")  # override beats the environment
    assert leaf_format() == "row"


def test_format_gate_rejects_unknown():
    with pytest.raises(ValueError):
        set_leaf_format("parquet")


# ----------------------------------------------------------------------
# leaf round trip
# ----------------------------------------------------------------------
@st.composite
def columnar_leaves(draw):
    arity = draw(st.integers(min_value=0, max_value=5))
    n_aggs = draw(st.integers(min_value=1, max_value=4))
    count = draw(st.integers(min_value=0, max_value=48))
    node = RLeafNode(
        view_id=arity, arity=arity, n_aggs=n_aggs, columnar=True
    )
    node.next_leaf = draw(st.one_of(st.just(-1), st.integers(0, 2**40)))
    coords = st.integers(min_value=1, max_value=INT64_MAX)
    for _ in range(count):
        node.points.append(tuple(draw(coords) for _ in range(arity)))
        node.values.append(
            tuple(
                draw(st.floats(allow_nan=False, allow_infinity=False))
                for _ in range(n_aggs)
            )
        )
    return node


@given(columnar_leaves())
@settings(max_examples=120, deadline=None)
def test_columnar_leaf_round_trip(node):
    if columnar_leaf_size(node.points, node.arity, node.n_aggs) > PAGE_SIZE:
        with pytest.raises(StorageError):
            node.to_bytes()
        return
    raw = node.to_bytes()
    assert raw[0] == LEAF_COLUMNAR_TYPE
    back = RLeafNode.from_bytes(raw)
    assert back.columnar
    assert back.view_id == node.view_id
    assert back.arity == node.arity
    assert back.n_aggs == node.n_aggs
    assert back.next_leaf == node.next_leaf
    assert back.points == node.points
    assert back.values == node.values


def test_columnar_beats_row_for_clustered_coords():
    row = RLeafNode(view_id=2, arity=2, n_aggs=1)
    col = RLeafNode(view_id=2, arity=2, n_aggs=1, columnar=True)
    for i in range(100):
        point, values = (5, 1000 + i), (1.0,)
        row.points.append(point)
        row.values.append(values)
        col.points.append(point)
        col.values.append(values)
    assert columnar_leaf_size(col.points, 2, 1) < len(row.to_bytes())


def test_corrupt_columnar_page_raises_typed_error():
    node = RLeafNode(view_id=1, arity=1, n_aggs=1, columnar=True)
    for i in range(1, 20):
        node.points.append((i * 3,))
        node.values.append((float(i),))
    raw = bytearray(node.to_bytes())
    # Truncate below the declared column lengths (past the header).
    with pytest.raises(InvalidRecordError):
        RLeafNode.from_bytes(bytes(raw[:24]))
    # Declare a column longer than the page holds.
    import struct

    struct.pack_into("<H", raw, 17, 0xFFFF)
    with pytest.raises(InvalidRecordError):
        RLeafNode.from_bytes(bytes(raw))


# ----------------------------------------------------------------------
# pack differential + fsck
# ----------------------------------------------------------------------
def _scan(tree):
    return [
        (leaf.view_id, point, values)
        for leaf in tree.scan_leaf_chain()
        for point, values in zip(leaf.points, leaf.values)
    ]


def test_columnar_pack_matches_row_pack_and_shrinks():
    dims = 3
    _disk, pool_row = make_pool()
    row_tree = pack_rtree(pool_row, dims, two_view_runs(dims))

    set_leaf_format("columnar")
    _disk2, pool_col = make_pool()
    col_tree = pack_rtree(pool_col, dims, two_view_runs(dims))

    assert _scan(row_tree) == _scan(col_tree)
    assert col_tree.num_pages < row_tree.num_pages
    assert dict(col_tree.view_extents).keys() == dict(
        row_tree.view_extents
    ).keys()
    # Every columnar leaf actually used the v3 encoding.
    assert all(leaf.columnar for leaf in col_tree.scan_leaf_chain())
    assert 0.0 < col_tree.leaf_utilization() <= 1.0


def test_fsck_accepts_columnar_tree():
    set_leaf_format("columnar")
    _disk, pool = make_pool()
    tree = pack_rtree(pool, 3, two_view_runs())
    report = check_tree(tree)
    assert report.ok, report.format()


def test_run_scan_identical_across_formats():
    dims = 3
    _disk, pool_row = make_pool()
    row_tree = pack_rtree(pool_row, dims, two_view_runs(dims))
    set_leaf_format("columnar")
    _disk2, pool_col = make_pool()
    col_tree = pack_rtree(pool_col, dims, two_view_runs(dims))
    def run_entries(tree, view_id):
        return [
            (point, values)
            for leaf in tree.scan_run(view_id)
            for point, values in zip(leaf.points, leaf.values)
        ]

    for view_id in (1, 2):
        assert run_entries(row_tree, view_id) == run_entries(
            col_tree, view_id
        )


# ----------------------------------------------------------------------
# empty extents
# ----------------------------------------------------------------------
def test_zero_row_view_records_empty_extent():
    _disk, pool = make_pool()
    runs = two_view_runs()
    runs.insert(0, PackedRun(0, 0, 1, []))  # present but empty apex view
    tree = pack_rtree(pool, 3, runs)
    assert tree.view_extents[0] == EMPTY_EXTENT
    assert tree.run_bounds(0) == (0, -1)
    assert list(tree.scan_run(0)) == []
    report = check_tree(tree)
    assert report.ok, report.format()


def test_fsck_flags_nonempty_chain_behind_empty_extent():
    _disk, pool = make_pool()
    tree = pack_rtree(pool, 3, two_view_runs())
    tree.view_extents[1] = EMPTY_EXTENT
    report = check_tree(tree)
    assert not report.ok
    assert "run-extent-mismatch" in report.codes()


def test_all_views_empty_builds_empty_tree():
    _disk, pool = make_pool()
    tree = pack_rtree(
        pool, 3, [PackedRun(1, 1, 1, []), PackedRun(2, 2, 1, [])]
    )
    assert tree.view_extents == {1: EMPTY_EXTENT, 2: EMPTY_EXTENT}
    assert len(tree) == 0
    assert list(tree.scan_leaf_chain()) == []
    assert check_tree(tree).ok
