"""Tests for merge-pack bulk-incremental updates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.rtree.geometry import Rect
from repro.rtree.merge import add_combiner, merge_pack, merge_streams
from repro.rtree.packing import PackedRun, pack_rtree, sort_key
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool(capacity=512):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def run_of(view_id, arity, pairs, dims):
    entries = sorted(
        [(tuple(p), (float(v),)) for p, v in pairs],
        key=lambda e: sort_key(e[0], dims),
    )
    return PackedRun(view_id, arity, 1, entries)


def collect(tree):
    return {
        (view, point): values
        for view, point, values in tree.scan_points()
    }


def test_merge_disjoint_points():
    _disk, pool = make_pool()
    old = pack_rtree(pool, 1, [run_of(0, 1, [((1,), 10), ((3,), 30)], 1)])
    delta = [run_of(0, 1, [((2,), 20), ((4,), 40)], 1)]
    new = merge_pack(pool, 1, old, delta)
    assert collect(new) == {
        (0, (1,)): (10.0,), (0, (2,)): (20.0,),
        (0, (3,)): (30.0,), (0, (4,)): (40.0,),
    }
    new.check_invariants()


def test_merge_combines_equal_points():
    _disk, pool = make_pool()
    old = pack_rtree(pool, 1, [run_of(0, 1, [((1,), 10), ((2,), 20)], 1)])
    delta = [run_of(0, 1, [((2,), 5)], 1)]
    new = merge_pack(pool, 1, old, delta)
    assert collect(new)[(0, (2,))] == (25.0,)


def test_merge_empty_delta_is_copy():
    _disk, pool = make_pool()
    old = pack_rtree(pool, 1, [run_of(0, 1, [((i,), i) for i in range(1, 500)], 1)])
    before = collect(old)
    new = merge_pack(pool, 1, old, [])
    assert collect(new) == before


def test_merge_into_empty_tree():
    _disk, pool = make_pool()
    old = pack_rtree(pool, 1, [])
    new = merge_pack(pool, 1, old, [run_of(0, 1, [((7,), 7)], 1)])
    assert collect(new) == {(0, (7,)): (7.0,)}


def test_merge_multiview_tree():
    _disk, pool = make_pool()
    v_low = run_of(1, 1, [((i,), 1) for i in range(1, 50)], 2)
    v_high = run_of(
        2, 2, [((x, y), 1) for x in range(1, 10) for y in range(1, 10)], 2
    )
    old = pack_rtree(pool, 2, [v_low, v_high])
    delta = [
        run_of(1, 1, [((25,), 9), ((100,), 5)], 2),
        run_of(2, 2, [((5, 5), 9)], 2),
    ]
    new = merge_pack(pool, 2, old, delta)
    data = collect(new)
    assert data[(1, (25, 0))] == (10.0,)
    assert data[(1, (100, 0))] == (5.0,)
    assert data[(2, (5, 5))] == (10.0,)
    assert len(data) == 49 + 81 + 1
    new.check_invariants()


def test_merge_retires_old_tree_by_default():
    disk, pool = make_pool()
    old = pack_rtree(pool, 1, [run_of(0, 1, [((i,), i) for i in range(1, 5000)], 1)])
    pages_before = disk.num_allocated
    new = merge_pack(pool, 1, old, [run_of(0, 1, [((1,), 1)], 1)])
    assert old.root_page_id == -1
    # Old pages freed: allocation should not have doubled.
    assert disk.num_allocated < pages_before * 1.2
    assert len(new) == 4999


def test_merge_keep_old_tree_when_asked():
    _disk, pool = make_pool()
    old = pack_rtree(pool, 1, [run_of(0, 1, [((1,), 1)], 1)])
    new = merge_pack(pool, 1, old, [], retire_old=False)
    assert old.root_page_id != -1
    assert collect(old) == collect(new)


def test_merge_is_sequential_io():
    disk, pool = make_pool(capacity=16)
    old = pack_rtree(
        pool, 1, [run_of(0, 1, [((i,), i) for i in range(1, 50_000)], 1)]
    )
    pool.flush_all()
    pool.clear()
    before = disk.cost_model.snapshot()
    merge_pack(pool, 1, old, [run_of(0, 1, [((5,), 1), ((70_000,), 1)], 1)])
    pool.flush_all()
    delta = disk.cost_model.stats - before
    assert delta.sequential_reads > 5 * delta.random_reads
    assert delta.sequential_writes > 5 * delta.random_writes


def test_view_collision_raises():
    dims = 1
    old = iter([(1, 1, 1, (5,), (1.0,))])
    delta = iter([(2, 1, 1, (5,), (1.0,))])
    with pytest.raises(MappingError):
        list(merge_streams(dims, old, delta))


def test_add_combiner():
    assert add_combiner(0, (1.0, 2.0), (3.0, 4.0)) == (4.0, 6.0)


def test_custom_combiner_applied():
    _disk, pool = make_pool()
    old = pack_rtree(pool, 1, [run_of(0, 1, [((1,), 10)], 1)])

    def max_combiner(_view, a, b):
        return tuple(max(x, y) for x, y in zip(a, b))

    new = merge_pack(pool, 1, old, [run_of(0, 1, [((1,), 3)], 1)],
                     combine=max_combiner)
    assert collect(new)[(0, (1,))] == (10.0,)


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(st.integers(1, 300), st.integers(1, 100), max_size=150),
    st.dictionaries(st.integers(1, 300), st.integers(1, 100), max_size=150),
)
def test_merge_equals_dict_union_property(base, delta):
    _disk, pool = make_pool()
    old = pack_rtree(pool, 1, [run_of(0, 1, [((k,), v) for k, v in base.items()], 1)])
    new = merge_pack(
        pool, 1, old, [run_of(0, 1, [((k,), v) for k, v in delta.items()], 1)]
    )
    expected = dict(base)
    for k, v in delta.items():
        expected[k] = expected.get(k, 0) + v
    got = {p[0]: v[0] for _, p, v in new.scan_points()}
    assert got == {k: float(v) for k, v in expected.items()}
    new.check_invariants()
