"""Tests for integer hyper-rectangles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtree.geometry import Rect


def test_from_point_is_degenerate():
    r = Rect.from_point((3, 4))
    assert r.lows == (3, 4) and r.highs == (3, 4)
    assert r.area() == 0


def test_degenerate_rect_rejected():
    with pytest.raises(ValueError):
        Rect((5,), (4,))


def test_dims_mismatch_rejected():
    with pytest.raises(ValueError):
        Rect((1, 2), (3,))


def test_contains_point():
    r = Rect((0, 0), (10, 10))
    assert r.contains_point((0, 0))
    assert r.contains_point((10, 10))
    assert r.contains_point((5, 7))
    assert not r.contains_point((11, 5))
    assert not r.contains_point((5, -1))


def test_contains_rect():
    outer = Rect((0, 0), (10, 10))
    inner = Rect((2, 2), (8, 8))
    assert outer.contains_rect(inner)
    assert not inner.contains_rect(outer)
    assert outer.contains_rect(outer)


def test_intersects():
    a = Rect((0, 0), (5, 5))
    b = Rect((5, 5), (9, 9))   # touching corners count
    c = Rect((6, 6), (9, 9))
    assert a.intersects(b)
    assert b.intersects(a)
    assert not a.intersects(c)


def test_union():
    a = Rect((0, 0), (2, 2))
    b = Rect((5, 1), (7, 3))
    u = a.union(b)
    assert u == Rect((0, 0), (7, 3))


def test_cover():
    rects = [Rect((0,), (1,)), Rect((5,), (9,)), Rect((3,), (4,))]
    assert Rect.cover(rects) == Rect((0,), (9,))


def test_cover_empty_raises():
    with pytest.raises(ValueError):
        Rect.cover([])
    with pytest.raises(ValueError):
        Rect.cover_points([])


def test_cover_points():
    assert Rect.cover_points([(1, 9), (4, 2)]) == Rect((1, 2), (4, 9))


def test_area_and_margin():
    r = Rect((0, 0), (4, 5))
    assert r.area() == 20
    assert r.margin() == 9


def test_enlargement():
    a = Rect((0, 0), (2, 2))
    assert a.enlargement(Rect((1, 1), (2, 2))) == 0
    assert a.enlargement(Rect((0, 0), (4, 2))) == 4


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)),
                min_size=1, max_size=30))
def test_cover_points_contains_all_property(points):
    mbr = Rect.cover_points(points)
    assert all(mbr.contains_point(p) for p in points)


@given(st.integers(0, 50), st.integers(0, 50),
       st.integers(0, 50), st.integers(0, 50))
def test_union_commutes_property(a1, a2, b1, b2):
    a = Rect((min(a1, a2),), (max(a1, a2),))
    b = Rect((min(b1, b2),), (max(b1, b2),))
    assert a.union(b) == b.union(a)
    assert a.union(b).contains_rect(a)
    assert a.union(b).contains_rect(b)
