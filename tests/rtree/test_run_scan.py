"""Tests for packed leaf-run extents and the run fast paths.

Covers: extent recording at pack/merge time, ``run_bounds`` resolution,
``search_run``/``search_run_group`` identity with the classic descent,
run-prefix seeking, extent invalidation on dynamic inserts, and the pin
protocol of abandoned iterators (every fetch balanced by an unpin even
when a consumer stops early).
"""

import pytest

from repro.rtree.geometry import Rect
from repro.rtree.merge import merge_pack
from repro.rtree.node import leaf_capacity
from repro.rtree.packing import PackedRun, pack_rtree
from repro.rtree.tree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

DIMS = 2
CAP1 = leaf_capacity(1, 1)
CAP2 = leaf_capacity(2, 1)
BIG = 10**9


def make_pool(capacity=2048):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def packed_tree(pool, n1=2 * CAP1 + 92, n2=2 * CAP2 + 31):
    """View 1 (arity 1) then view 2 (arity 2), several leaves each."""
    run1 = PackedRun(1, 1, 1, [((i,), (float(i),)) for i in range(1, n1 + 1)])
    entries2 = sorted(
        (
            ((x, y), (float(x * y),))
            for y in range(1, 41)
            for x in range(1, n2 // 40 + 2)
        ),
        key=lambda e: tuple(reversed(e[0])),
    )[:n2]
    run2 = PackedRun(2, 2, 1, entries2)
    return pack_rtree(pool, DIMS, [run1, run2])


def view_rect(view_arity, bounds=None):
    """The slice rectangle for one view: padding dims pinned to zero."""
    lows, highs = [], []
    for dim in range(DIMS):
        if dim >= view_arity:
            lows.append(0)
            highs.append(0)
        elif bounds and dim in bounds:
            lo, hi = bounds[dim]
            lows.append(lo)
            highs.append(hi)
        else:
            lows.append(1)
            highs.append(BIG)
    return Rect(tuple(lows), tuple(highs))


def assert_unpinned(pool):
    assert all(p.pin_count == 0 for p in pool._all_pages())


# ----------------------------------------------------------------------
# extent recording
# ----------------------------------------------------------------------
def test_pack_records_one_extent_per_view():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    assert sorted(tree.view_extents) == [1, 2]
    (lo1, hi1) = tree.run_bounds(1)
    (lo2, hi2) = tree.run_bounds(2)
    # The two runs partition the leaf chain, view 1 first.
    assert lo1 == 0
    assert hi1 + 1 == lo2
    assert hi2 == len(tree.leaf_page_ids) - 1
    assert tree.view_extents[1] == (
        tree.leaf_page_ids[lo1], tree.leaf_page_ids[hi1]
    )
    assert tree.view_extents[2] == (
        tree.leaf_page_ids[lo2], tree.leaf_page_ids[hi2]
    )


def test_run_bounds_none_without_extent():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    assert tree.run_bounds(9) is None
    tree.view_extents = {}
    tree._run_index.clear()
    assert tree.run_bounds(1) is None


def test_merge_pack_rerecords_extents():
    _disk, pool = make_pool()
    tree = packed_tree(pool, n1=300, n2=100)
    delta = [PackedRun(1, 1, 1, [((i,), (2.0,)) for i in range(250, 351)])]
    merged = merge_pack(pool, DIMS, tree, delta)
    assert sorted(merged.view_extents) == [1, 2]
    lo1, hi1 = merged.run_bounds(1)
    lo2, hi2 = merged.run_bounds(2)
    assert lo1 == 0 and hi1 < lo2 and hi2 == len(merged.leaf_page_ids) - 1


def test_dynamic_insert_clears_extents():
    # A full-dimensional view, so a dynamic insert can land in its leaves.
    _disk, pool = make_pool()
    run = PackedRun(
        2, 2, 1, [((x, 1), (1.0,)) for x in range(1, 2 * CAP2 + 10)]
    )
    tree = pack_rtree(pool, DIMS, [run])
    assert tree.view_extents
    tree.insert((500_000, 1), (1.0,))
    assert tree.view_extents == {}
    assert tree.run_bounds(2) is None


# ----------------------------------------------------------------------
# search_run == search, restricted to the view
# ----------------------------------------------------------------------
def _descent_matches(tree, rect):
    return list(tree.search(rect))


@pytest.mark.parametrize(
    "arity,bounds,lo_key,hi_key",
    [
        (1, None, (), ()),                          # unbound run scan
        (1, {0: (40, 40)}, (40,), (40,)),           # equality prefix
        (1, {0: (100, 400)}, (100,), (400,)),       # range prefix
        (2, None, (), ()),
        (2, {1: (7, 7)}, (7,), (7,)),               # prefix on last attr
        (2, {1: (7, 7), 0: (2, 2)}, (7, 2), (7, 2)),
        (2, {1: (3, 9)}, (3,), (9,)),               # range closes prefix
        (2, {0: (2, 2)}, (), ()),                   # non-prefix binding
    ],
)
def test_search_run_matches_descent(arity, bounds, lo_key, hi_key):
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    rect = view_rect(arity, bounds)
    expected = _descent_matches(tree, rect)
    got = list(tree.search_run(arity, rect, lo_key, hi_key))
    assert got == expected  # same matches, same (run) order
    assert_unpinned(pool)


def test_search_run_without_extent_raises():
    from repro.errors import StorageError

    _disk, pool = make_pool()
    tree = packed_tree(pool)
    tree.view_extents = {}
    tree._run_index.clear()
    with pytest.raises(StorageError):
        list(tree.search_run(1, view_rect(1)))


def test_scan_run_yields_only_the_views_leaves():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    leaves = list(tree.scan_run(1))
    lo, hi = tree.run_bounds(1)
    assert len(leaves) == hi - lo + 1
    assert all(leaf.view_id == 1 for leaf in leaves)
    assert_unpinned(pool)


def test_search_run_group_matches_individual_runs():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    requests = [
        (view_rect(2), (), ()),
        (view_rect(2, {1: (5, 5)}), (5,), (5,)),
        (view_rect(2, {1: (2, 8)}), (2,), (8,)),
        (view_rect(2, {1: (9, 9), 0: (1, 1)}), (9, 1), (9, 1)),
        (view_rect(2, {0: (3, 3)}), (), ()),  # residual (no prefix)
    ]
    grouped = tree.search_run_group(2, requests)
    for (rect, lo, hi), got in zip(requests, grouped):
        assert got == list(tree.search_run(2, rect, lo, hi))
    assert_unpinned(pool)


def test_search_run_group_empty():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    assert tree.search_run_group(1, []) == []


# ----------------------------------------------------------------------
# pin protocol on abandoned iterators
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["scan_leaf_chain", "scan_points"])
def test_abandoned_chain_iterators_release_pins(method):
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    iterator = getattr(tree, method)()
    next(iterator)
    next(iterator)
    iterator.close()
    assert_unpinned(pool)


def test_abandoned_run_search_releases_pins():
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    iterator = tree.search_run(1, view_rect(1))
    for _ in range(3):
        next(iterator)
    iterator.close()
    assert_unpinned(pool)


def test_every_fetch_is_unpinned_after_full_scan():
    """The unpins counter balances the scan's fetches exactly."""
    _disk, pool = make_pool()
    tree = packed_tree(pool)
    before = pool.stats.copy()
    list(tree.search_run(1, view_rect(1)))
    delta = pool.stats - before
    assert delta.unpins == delta.hits + delta.misses
    assert_unpinned(pool)
