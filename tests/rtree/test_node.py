"""Tests for R-tree node serialization, including leaf compression."""

from repro.rtree.geometry import Rect
from repro.rtree.node import (
    RInteriorNode,
    RLeafNode,
    interior_capacity,
    leaf_capacity,
    node_type_of,
)


def test_leaf_roundtrip():
    node = RLeafNode(view_id=3, arity=2, n_aggs=1)
    node.points = [(1, 2), (3, 4)]
    node.values = [(10.0,), (20.5,)]
    node.next_leaf = 77
    clone = RLeafNode.from_bytes(node.to_bytes())
    assert clone.view_id == 3
    assert clone.arity == 2
    assert clone.points == node.points
    assert clone.values == node.values
    assert clone.next_leaf == 77


def test_leaf_roundtrip_multiple_aggregates():
    node = RLeafNode(view_id=1, arity=1, n_aggs=3)
    node.points = [(5,)]
    node.values = [(1.0, 2.0, 3.0)]
    clone = RLeafNode.from_bytes(node.to_bytes())
    assert clone.values == [(1.0, 2.0, 3.0)]


def test_leaf_arity_zero_super_aggregate():
    node = RLeafNode(view_id=9, arity=0, n_aggs=1)
    node.points = [()]
    node.values = [(6_001_215.0,)]
    clone = RLeafNode.from_bytes(node.to_bytes())
    assert clone.points == [()]
    assert clone.values == [(6_001_215.0,)]


def test_padded_point():
    node = RLeafNode(view_id=0, arity=2, n_aggs=1)
    assert node.padded_point((7, 8), 4) == (7, 8, 0, 0)


def test_leaf_mbr_uses_padding():
    node = RLeafNode(view_id=0, arity=1, n_aggs=1)
    node.points = [(2,), (9,)]
    node.values = [(0.0,), (0.0,)]
    assert node.mbr(3) == Rect((2, 0, 0), (9, 0, 0))


def test_compression_increases_capacity():
    """An arity-1 leaf holds far more entries than an arity-4 leaf."""
    assert leaf_capacity(1, 1) > 2 * leaf_capacity(4, 1)


def test_leaf_capacity_at_capacity_roundtrip():
    cap = leaf_capacity(3, 1)
    node = RLeafNode(view_id=0, arity=3, n_aggs=1)
    node.points = [(i + 1, i + 1, i + 1) for i in range(cap)]
    node.values = [(float(i),) for i in range(cap)]
    clone = RLeafNode.from_bytes(node.to_bytes())
    assert len(clone.points) == cap


def test_interior_roundtrip():
    node = RInteriorNode(dims=3)
    node.children = [10, 11]
    node.mbrs = [Rect((0, 0, 0), (5, 5, 5)), Rect((6, 0, 0), (9, 9, 9))]
    clone = RInteriorNode.from_bytes(node.to_bytes())
    assert clone.children == node.children
    assert clone.mbrs == node.mbrs
    assert clone.mbr() == Rect((0, 0, 0), (9, 9, 9))


def test_interior_capacity_positive():
    for dims in range(1, 9):
        assert interior_capacity(dims) > 8


def test_node_type_peek():
    leaf = RLeafNode(0, 1, 1)
    interior = RInteriorNode(1)
    assert node_type_of(leaf.to_bytes()) == 1
    assert node_type_of(interior.to_bytes()) == 2
