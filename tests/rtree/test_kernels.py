"""Vectorized columnar query kernels: units and the differential sweep.

Covers: ``select_rows`` against per-point rectangle containment,
``FoldAccumulator``'s exact serial float semantics, scalar/vectorized
identity on ``search_run``/``search_run_group``/the classic descent,
``search_run_fold`` against folding the materialized matches, the
decoded-column cache (hits across pool eviction, version invalidation,
capacity bounds), the aggregate pushdown, and a Hypothesis sweep that
answers random workloads three ways — row-format scalar, columnar
scalar, columnar vectorized (serial and batched) — and demands
identical rows.

Example count scales with ``REPRO_DIFF_EXAMPLES`` (default 200 locally;
CI sets a smaller smoke profile).
"""

import os
from array import array
from itertools import combinations

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.engine import CubetreeEngine
from repro.obs import get_registry
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.rtree.geometry import Rect
from repro.rtree.kernels import (
    FoldAccumulator,
    LeafColumns,
    leaf_columns,
    select_rows,
    set_vector_kernels,
    vector_kernels_enabled,
)
from repro.rtree.node import leaf_capacity, set_leaf_format
from repro.rtree.packing import PackedRun, pack_rtree
from repro.storage.buffer import BufferPool, DecodedColumnCache
from repro.storage.disk import DiskManager
from repro.warehouse.star import Dimension, StarSchema

EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "200"))

DIMS = 2
CAP1 = leaf_capacity(1, 1)
CAP2 = leaf_capacity(2, 1)
BIG = 10**9
INT64_MAX = (1 << 63) - 1

KEY_NAMES = ("ka", "kb", "kc")


def make_pool(capacity=2048):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def packed_tree(pool, n1=2 * CAP1 + 92, n2=2 * CAP2 + 31):
    """View 1 (arity 1) then view 2 (arity 2), several leaves each."""
    run1 = PackedRun(1, 1, 1, [((i,), (float(i),)) for i in range(1, n1 + 1)])
    entries2 = sorted(
        (
            ((x, y), (float(x * y),))
            for y in range(1, 41)
            for x in range(1, n2 // 40 + 2)
        ),
        key=lambda e: tuple(reversed(e[0])),
    )[:n2]
    run2 = PackedRun(2, 2, 1, entries2)
    return pack_rtree(pool, DIMS, [run1, run2])


def view_rect(view_arity, bounds=None):
    """The slice rectangle for one view: padding dims pinned to zero."""
    lows, highs = [], []
    for dim in range(DIMS):
        if dim >= view_arity:
            lows.append(0)
            highs.append(0)
        elif bounds and dim in bounds:
            lo, hi = bounds[dim]
            lows.append(lo)
            highs.append(hi)
        else:
            lows.append(1)
            highs.append(BIG)
    return Rect(tuple(lows), tuple(highs))


def columnar_packed_tree(pool, **kwargs):
    """A packed tree whose leaves must be decoded from columnar pages."""
    set_leaf_format("columnar")
    tree = packed_tree(pool, **kwargs)
    pool.clear()  # drop in-memory nodes: fetches decode columnar bytes
    return tree


def make_cols(points, n_aggs=0):
    """LeafColumns for explicit points (sorted like a packed leaf)."""
    arity = len(points[0]) if points else 0
    coords = tuple(
        array("q", [p[c] for p in points]) for c in range(arity)
    )
    measures = tuple(
        array("d", [float(i)] * len(points)) for _ in range(n_aggs)
    )
    return LeafColumns(len(points), arity, coords, measures)


def scalar_selection(points, rect, dims):
    """Indices the scalar path would keep: padded containment, in order."""
    pad = (0,) * (dims - (len(points[0]) if points else 0))
    return [
        i
        for i, p in enumerate(points)
        if rect.contains_point(tuple(p) + pad)
    ]


# ----------------------------------------------------------------------
# select_rows
# ----------------------------------------------------------------------
def test_select_rows_arity_zero_selects_everything():
    cols = LeafColumns(3, 0, (), ())
    rect = Rect((0, 0), (0, 0))
    assert select_rows(cols, rect, DIMS) == range(3)


def test_select_rows_empty_leaf_is_none():
    cols = LeafColumns(0, 1, (array("q"),), ())
    assert select_rows(cols, view_rect(1), DIMS) is None


def test_select_rows_padding_dim_violation_is_none():
    points = [(1,), (2,), (3,)]
    cols = make_cols(points)
    # A rect demanding dim 1 >= 1 can never match an arity-1 leaf.
    rect = Rect((1, 1), (BIG, BIG))
    assert select_rows(cols, rect, DIMS) is None
    assert scalar_selection(points, rect, DIMS) == []


def test_select_rows_prefix_bounds_come_back_contiguous():
    points = [(i,) for i in range(1, 21)]
    cols = make_cols(points)
    rect = view_rect(1, {0: (5, 11)})
    sel = select_rows(cols, rect, DIMS)
    assert isinstance(sel, range)
    assert list(sel) == scalar_selection(points, rect, DIMS)


def test_select_rows_secondary_dim_filter_returns_index_list():
    # Sorted by reversed key: dim 1 (the lead column) non-decreasing.
    points = sorted(
        ((x, y) for y in range(1, 6) for x in range(1, 6)),
        key=lambda p: (p[1], p[0]),
    )
    cols = make_cols(points)
    rect = view_rect(2, {1: (2, 4), 0: (3, 3)})
    sel = select_rows(cols, rect, DIMS)
    assert isinstance(sel, list)
    assert sel == scalar_selection(points, rect, DIMS)


def test_select_rows_no_match_is_none():
    points = [(i,) for i in range(1, 9)]
    cols = make_cols(points)
    assert select_rows(cols, view_rect(1, {0: (100, 200)}), DIMS) is None


@given(st.data())
@settings(max_examples=max(20, EXAMPLES // 2), deadline=None)
def test_select_rows_matches_scalar_containment(data):
    """Kernel selection == per-point containment on any packed leaf."""
    n = data.draw(st.integers(min_value=1, max_value=40))
    raw = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=9),
                st.integers(min_value=1, max_value=9),
            ),
            min_size=n,
            max_size=n,
        )
    )
    points = sorted(raw, key=lambda p: tuple(reversed(p)))
    cols = make_cols(points)
    bounds = {}
    for dim in range(2):
        if data.draw(st.booleans()):
            lo = data.draw(st.integers(min_value=1, max_value=9))
            hi = data.draw(st.integers(min_value=lo, max_value=9))
            bounds[dim] = (lo, hi)
    rect = view_rect(2, bounds or None)
    sel = select_rows(cols, rect, DIMS)
    assert list(sel) if sel is not None else [] == scalar_selection(
        points, rect, DIMS
    )


# ----------------------------------------------------------------------
# FoldAccumulator
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=max(20, EXAMPLES // 2), deadline=None)
def test_fold_block_is_bit_identical_to_serial_adds(rows):
    reducers = ("add", "min", "max")
    serial = FoldAccumulator(reducers)
    for row in rows:
        serial.add(row)

    measures = tuple(
        array("d", [row[c] for row in rows]) for c in range(3)
    )
    as_range = FoldAccumulator(reducers)
    as_range.add_block(measures, range(len(rows)))
    as_list = FoldAccumulator(reducers)
    as_list.add_block(measures, list(range(len(rows))))

    import math

    for got in (as_range.states, as_list.states):
        assert got is not None
        for a, b in zip(got, serial.states):
            # == plus copysign: -0.0 vs 0.0 must not be conflated.
            assert a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    assert as_range.rows == as_list.rows == len(rows)


def test_fold_seeds_from_first_row_not_zero():
    acc = FoldAccumulator(("add",))
    acc.add((-0.0,))
    import math

    assert math.copysign(1.0, acc.states[0]) == -1.0  # not 0.0 + -0.0


def test_fold_empty_block_is_noop():
    acc = FoldAccumulator(("add",))
    acc.add_block((array("d"),), range(0))
    assert acc.states is None and acc.rows == 0


# ----------------------------------------------------------------------
# scalar == vectorized on every tree path
# ----------------------------------------------------------------------
SLICES = [
    (1, None, (), ()),
    (1, {0: (40, 40)}, (40,), (40,)),
    (1, {0: (100, 400)}, (100,), (400,)),
    (2, None, (), ()),
    (2, {1: (7, 7)}, (7,), (7,)),
    (2, {1: (7, 7), 0: (2, 2)}, (7, 2), (7, 2)),
    (2, {1: (3, 9)}, (3,), (9,)),
    (2, {0: (2, 2)}, (), ()),
]


@pytest.mark.parametrize("arity,bounds,lo_key,hi_key", SLICES)
def test_search_run_vectorized_equals_scalar(arity, bounds, lo_key, hi_key):
    _disk, pool = make_pool()
    try:
        tree = columnar_packed_tree(pool)
        rect = view_rect(arity, bounds)
        set_vector_kernels(False)
        expected = list(tree.search_run(arity, rect, lo_key, hi_key))
        set_vector_kernels(True)
        got = list(tree.search_run(arity, rect, lo_key, hi_key))
        assert got == expected  # same matches, same order
    finally:
        set_vector_kernels(None)
        set_leaf_format(None)


@pytest.mark.parametrize("arity,bounds,lo_key,hi_key", SLICES)
def test_descent_vectorized_equals_scalar(arity, bounds, lo_key, hi_key):
    _disk, pool = make_pool()
    try:
        tree = columnar_packed_tree(pool)
        rect = view_rect(arity, bounds)
        set_vector_kernels(False)
        expected = list(tree.search(rect))
        set_vector_kernels(True)
        assert list(tree.search(rect)) == expected
    finally:
        set_vector_kernels(None)
        set_leaf_format(None)


def test_search_run_group_vectorized_equals_scalar():
    _disk, pool = make_pool()
    try:
        tree = columnar_packed_tree(pool)
        requests = [
            (view_rect(2), (), ()),
            (view_rect(2, {1: (5, 5)}), (5,), (5,)),
            (view_rect(2, {1: (2, 8)}), (2,), (8,)),
            (view_rect(2, {0: (3, 3)}), (), ()),
        ]
        set_vector_kernels(False)
        expected = tree.search_run_group(2, requests)
        set_vector_kernels(True)
        assert tree.search_run_group(2, requests) == expected
    finally:
        set_vector_kernels(None)
        set_leaf_format(None)


@pytest.mark.parametrize("arity,bounds,lo_key,hi_key", SLICES)
@pytest.mark.parametrize("kernels", [False, True])
def test_search_run_fold_equals_folding_matches(
    arity, bounds, lo_key, hi_key, kernels
):
    _disk, pool = make_pool()
    try:
        tree = columnar_packed_tree(pool)
        rect = view_rect(arity, bounds)
        set_vector_kernels(kernels)
        expected = FoldAccumulator(("add",))
        for _vid, _pt, values in tree.search_run(arity, rect, lo_key, hi_key):
            expected.add(values)
        acc = FoldAccumulator(("add",))
        tree.search_run_fold(arity, rect, acc, lo_key, hi_key)
        assert acc.states == expected.states
        assert acc.rows == expected.rows
    finally:
        set_vector_kernels(None)
        set_leaf_format(None)


def test_dynamic_leaves_fall_back_to_scalar():
    """Dynamic inserts wipe the extents, so the descent must not bisect
    (possibly unsorted, possibly zero-coordinate) dynamic leaves."""
    _disk, pool = make_pool()
    try:
        set_leaf_format("columnar")
        set_vector_kernels(True)
        from repro.rtree.tree import RTree

        tree = RTree(pool, dims=2, n_aggs=1)
        for point in [(5, 5), (1, 2), (0, 3), (4, 0)]:  # unsorted, zeros
            tree.insert(point, (1.0,))
        pool.clear()
        rect = Rect((0, 0), (4, BIG))
        got = sorted(pt for _vid, pt, _vals in tree.search(rect))
        assert got == [(0, 3), (1, 2), (4, 0)]
    finally:
        set_vector_kernels(None)
        set_leaf_format(None)


# ----------------------------------------------------------------------
# decoded-column cache
# ----------------------------------------------------------------------
def test_column_cache_unit_hit_miss_invalidate_evict():
    cache = DecodedColumnCache(capacity=2)
    assert cache.get(1, 0) is None  # miss
    cache.put(1, 0, "one", 10)
    assert cache.get(1, 0) == "one"  # hit
    assert cache.get(1, 1) is None  # version moved on -> invalidated
    assert cache.stats.invalidations == 1
    cache.put(1, 1, "one'", 10)
    cache.put(2, 0, "two", 10)
    assert cache.get(1, 1) == "one'"  # LRU refresh: 2 is now coldest
    cache.put(3, 0, "three", 10)  # capacity 2 -> evicts page 2
    assert cache.stats.evictions == 1
    assert cache.get(2, 0) is None
    assert len(cache) == 2
    assert cache.stats.bytes == 20


def test_column_cache_capacity_zero_disables_admission():
    cache = DecodedColumnCache(capacity=0)
    cache.put(1, 0, "one", 10)
    assert len(cache) == 0
    assert cache.get(1, 0) is None


def test_column_cache_survives_page_eviction():
    """Rescanning a churned pool serves decodes from the side-cache."""
    # A pool smaller than view 1's leaf run (columnar leaves hold ~1.5x
    # the row capacity, so 24*CAP1 entries make ~16 leaves): the scan
    # churns its own pages out, and the rescan re-fetches them — and
    # finds their decoded leaves still in the side-cache.
    _disk, pool = make_pool(capacity=12)
    try:
        tree = columnar_packed_tree(pool, n1=24 * CAP1)
        set_vector_kernels(True)
        list(tree.search_run(1, view_rect(1)))
        before = pool.column_cache.stats.hits
        list(tree.search_run(1, view_rect(1)))
        assert pool.column_cache.stats.hits > before
    finally:
        set_vector_kernels(None)
        set_leaf_format(None)


def test_column_cache_invalidated_by_dirty_unpin():
    _disk, pool = make_pool()
    page = pool.new_page()
    pid = page.page_id
    version = pool.page_version(pid)
    pool.unpin_page(pid)
    pool.store_columns(pid, "decoded", 8)
    assert pool.cached_columns(pid) == "decoded"
    page = pool.fetch_page(pid)
    pool.unpin_page(pid, dirty=True)  # rewrite -> version bump
    assert pool.page_version(pid) == version + 1
    assert pool.cached_columns(pid) is None
    assert pool.column_cache.stats.invalidations >= 1


def test_pool_clear_empties_column_cache():
    _disk, pool = make_pool()
    page = pool.new_page()
    pool.unpin_page(page.page_id)
    pool.store_columns(page.page_id, "decoded", 8)
    pool.clear()
    assert len(pool.column_cache) == 0
    assert pool.column_cache.stats.bytes == 0


# ----------------------------------------------------------------------
# engine-level: pushdown + the three-way differential sweep
# ----------------------------------------------------------------------
def _make_schema(domain_sizes):
    dimensions = {}
    for name, size in domain_sizes.items():
        dimensions[name] = Dimension(
            name=f"dim_{name}",
            key=name,
            attributes=(name,),
            rows=[(value,) for value in range(1, size + 1)],
        )
    return StarSchema(
        fact_keys=tuple(domain_sizes),
        measure="quantity",
        dimensions=dimensions,
    )


def _small_engine():
    domain = {"ka": 4, "kb": 4}
    schema = _make_schema(domain)
    facts = [
        (a, b, float(a * 10 + b)) for a in range(1, 5) for b in range(1, 5)
    ]
    views = [
        ViewDefinition("apex", ("ka", "kb")),
        ViewDefinition("v_ka", ("ka",)),
        ViewDefinition("none", ()),
    ]
    engine = CubetreeEngine(schema, buffer_pages=64)
    engine.materialize(views, facts)
    return engine


def test_total_query_takes_the_aggregate_pushdown():
    engine = _small_engine()
    total = SliceQuery((), (("ka", 2),), ())
    counter = get_registry().counter("query.cubetree.pushdowns")
    try:
        set_vector_kernels(False)
        expected = engine.query(total, fast=True)
        before = counter.value
        set_vector_kernels(True)
        got = engine.query(total, fast=True)
        assert counter.value == before + 1
        assert got.rows == expected.rows
        assert got.plan == expected.plan
        assert got.io.simulated_ms == expected.io.simulated_ms
    finally:
        set_vector_kernels(None)


def test_group_by_query_skips_the_pushdown():
    engine = _small_engine()
    grouped = SliceQuery(("ka",), (("kb", 3),), ())
    counter = get_registry().counter("query.cubetree.pushdowns")
    try:
        set_vector_kernels(True)
        before = counter.value
        engine.query(grouped, fast=True)
        assert counter.value == before
    finally:
        set_vector_kernels(None)


@st.composite
def slice_queries(draw, domain_sizes):
    """A random slice query over the schema's fact keys."""
    keys = list(domain_sizes)
    node = draw(
        st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
    )
    bound = draw(
        st.lists(st.sampled_from(node), unique=True, max_size=len(node))
        if node
        else st.just([])
    )
    bindings = []
    ranges = []
    for attr in bound:
        size = domain_sizes[attr]
        if draw(st.booleans()):
            bindings.append(
                (attr, draw(st.integers(min_value=1, max_value=size)))
            )
        else:
            low = draw(st.integers(min_value=1, max_value=size))
            high = draw(st.integers(min_value=low, max_value=size))
            ranges.append((attr, low, high))
    group_by = tuple(a for a in node if a not in set(bound))
    return SliceQuery(group_by, tuple(bindings), tuple(ranges))


@st.composite
def sweep_cases(draw):
    n_keys = draw(st.integers(min_value=2, max_value=3))
    keys = KEY_NAMES[:n_keys]
    domain_sizes = {
        key: draw(st.integers(min_value=2, max_value=6)) for key in keys
    }
    rows = draw(
        st.lists(
            st.tuples(
                *[
                    st.integers(min_value=1, max_value=domain_sizes[key])
                    for key in keys
                ],
                st.integers(min_value=0, max_value=20),
            ),
            min_size=1,
            max_size=40,
        )
    )
    facts = [tuple(row[:-1]) + (float(row[-1]),) for row in rows]
    views = [
        ViewDefinition("apex", tuple(keys)),
        ViewDefinition("none", ()),
    ]
    middles = [
        node
        for size in range(1, len(keys))
        for node in combinations(keys, size)
    ]
    chosen = draw(
        st.lists(st.sampled_from(middles), unique=True, max_size=len(middles))
        if middles
        else st.just([])
    )
    views.extend(ViewDefinition(f"v_{'_'.join(n)}", n) for n in chosen)
    queries = draw(
        st.lists(slice_queries(domain_sizes), min_size=1, max_size=4)
    )
    return domain_sizes, facts, views, queries


@given(sweep_cases())
@settings(max_examples=EXAMPLES, deadline=None)
def test_row_scalar_columnar_scalar_and_vectorized_agree(case):
    """row-scalar == columnar-scalar == columnar-vectorized (and batch)."""
    domain_sizes, facts, views, queries = case
    schema = _make_schema(domain_sizes)
    try:
        set_vector_kernels(False)
        set_leaf_format("row")
        row_engine = CubetreeEngine(schema, buffer_pages=64)
        row_engine.materialize(views, facts)
        reference = [
            sorted(row_engine.query(q, fast=True).rows) for q in queries
        ]

        set_leaf_format("columnar")
        col_engine = CubetreeEngine(schema, buffer_pages=64)
        col_engine.materialize(views, facts)
        col_engine.pool.clear()  # force columnar decode on first touch
        scalar = [col_engine.query(q, fast=True).rows for q in queries]

        set_vector_kernels(True)
        vector = [col_engine.query(q, fast=True).rows for q in queries]
        batch = [
            result.rows for result in col_engine.query_batch(queries).results
        ]

        assert vector == scalar  # identical rows, identical order
        assert batch == scalar
        assert [sorted(rows) for rows in scalar] == reference
    finally:
        set_vector_kernels(None)
        set_leaf_format(None)


def test_kernel_dispatch_gate_resolution():
    try:
        set_vector_kernels(True)
        assert vector_kernels_enabled()
        set_vector_kernels(False)
        assert not vector_kernels_enabled()
        set_vector_kernels(None)
        os.environ["REPRO_VECTOR_KERNELS"] = "0"
        assert not vector_kernels_enabled()
        os.environ["REPRO_VECTOR_KERNELS"] = "1"
        assert vector_kernels_enabled()
    finally:
        os.environ.pop("REPRO_VECTOR_KERNELS", None)
        set_vector_kernels(None)


def test_leaf_columns_builds_and_stashes_for_row_leaves():
    from repro.rtree.node import RLeafNode

    leaf = RLeafNode(view_id=1, arity=2, n_aggs=1)
    leaf.points = [(1, 2), (3, 4)]
    leaf.values = [(1.5,), (2.5,)]
    cols = leaf_columns(leaf)
    assert list(cols.coords[0]) == [1, 3]
    assert list(cols.coords[1]) == [2, 4]
    assert list(cols.measures[0]) == [1.5, 2.5]
    assert leaf.coord_cols is cols.coords  # stashed for reuse
