"""Tests for sort-order packing of R-trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidCoordinateError, MappingError
from repro.rtree.geometry import Rect
from repro.rtree.packing import (
    PackedRun,
    free_tree,
    hilbert_sort_key,
    pack_rtree,
    sort_key,
)
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool(capacity=512):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def sorted_entries(points, value=1.0):
    dims = max(len(p) for p in points) if points else 1
    return sorted(
        [(tuple(p), (value,)) for p in points],
        key=lambda e: sort_key(e[0], dims),
    )


def test_sort_key_reverses_and_pads():
    assert sort_key((3, 7), 2) == (7, 3)
    assert sort_key((3,), 3) == (0, 0, 3)
    assert sort_key((), 2) == (0, 0)


def test_sort_key_orders_views_by_arity():
    """Padded lower-arity points sort before higher-arity ones."""
    one_d = sort_key((99,), 3)
    two_d = sort_key((1, 1), 3)
    three_d = sort_key((1, 1, 1), 3)
    assert one_d < two_d < three_d


def test_paper_table_2_and_4_sort_order():
    """Views V8 and V9 of the paper's worked example (Tables 1-4)."""
    v8 = [(4,), (2,), (3,), (1,), (6,), (5,)]
    v8_sorted = sorted(v8, key=lambda p: sort_key(p, 2))
    assert v8_sorted == [(1,), (2,), (3,), (4,), (5,), (6,)]
    v9 = [(3, 1), (1, 1), (1, 3), (3, 3), (2, 1)]
    v9_sorted = sorted(v9, key=lambda p: sort_key(p, 2))
    assert v9_sorted == [(1, 1), (2, 1), (3, 1), (1, 3), (3, 3)]


def test_pack_single_view():
    _disk, pool = make_pool()
    entries = sorted_entries([(x, y) for x in range(1, 51)
                              for y in range(1, 51)])
    run = PackedRun(view_id=0, arity=2, n_aggs=1, entries=entries)
    tree = pack_rtree(pool, 2, [run])
    assert len(tree) == 2500
    tree.check_invariants()
    hits = list(tree.search(Rect((10, 10), (12, 12))))
    assert len(hits) == 9
    assert all(view == 0 for view, _, _ in hits)


def test_pack_empty_is_empty_tree():
    _disk, pool = make_pool()
    tree = pack_rtree(pool, 2, [])
    assert len(tree) == 0
    assert tree.root_page_id == -1


def test_pack_multiple_views_no_interleaving():
    _disk, pool = make_pool()
    super_agg = PackedRun(1, 0, 1, [((), (100.0,))])
    v1 = PackedRun(2, 1, 1, sorted_entries([(i,) for i in range(1, 300)]))
    v2 = PackedRun(
        3, 2, 1,
        sorted([((x, y), (1.0,)) for x in range(1, 40)
                for y in range(1, 40)], key=lambda e: sort_key(e[0], 3)),
    )
    v3 = PackedRun(
        4, 3, 1,
        sorted([((x, y, z), (1.0,)) for x in range(1, 12)
                for y in range(1, 12) for z in range(1, 12)],
               key=lambda e: sort_key(e[0], 3)),
    )
    tree = pack_rtree(pool, 3, [super_agg, v1, v2, v3])
    assert len(tree) == 1 + 299 + 39 * 39 + 11 ** 3
    # Every leaf holds exactly one view, and leaves appear by ascending arity.
    leaf_views = [leaf.view_id for leaf in tree.scan_leaf_chain()]
    seen = []
    for view in leaf_views:
        if not seen or seen[-1] != view:
            seen.append(view)
    assert seen == [1, 2, 3, 4]  # contiguous runs, no interleaving


def test_pack_leaf_utilization_is_full():
    _disk, pool = make_pool()
    entries = sorted_entries([(i,) for i in range(1, 5001)])
    tree = pack_rtree(pool, 1, [PackedRun(0, 1, 1, entries)])
    # Only the final leaf of the run may be partially filled.
    assert tree.leaf_utilization() > 0.95


def test_packed_search_views_separately():
    """Queries against one view's region never see another view's points."""
    _disk, pool = make_pool()
    v1 = PackedRun(1, 1, 1, sorted_entries([(i,) for i in range(1, 100)]))
    v2 = PackedRun(
        2, 2, 1,
        sorted([((x, y), (2.0,)) for x in range(1, 30)
                for y in range(1, 30)], key=lambda e: sort_key(e[0], 2)),
    )
    tree = pack_rtree(pool, 2, [v1, v2])
    # V1 lives on the x-axis plane y = 0.
    v1_hits = list(tree.search(Rect((1, 0), (10**9, 0))))
    assert len(v1_hits) == 99
    assert all(view == 1 for view, _, _ in v1_hits)
    # V2 occupies y >= 1.
    v2_hits = list(tree.search(Rect((1, 1), (10**9, 10**9))))
    assert len(v2_hits) == 29 * 29
    assert all(view == 2 for view, _, _ in v2_hits)


def test_pack_writes_sequentially():
    disk, pool = make_pool(capacity=8)
    entries = sorted_entries([(i,) for i in range(1, 30_000)])
    before = disk.cost_model.snapshot()
    pack_rtree(pool, 1, [PackedRun(0, 1, 1, entries)])
    pool.flush_all()
    delta = disk.cost_model.stats - before
    assert delta.sequential_writes > 5 * delta.random_writes


def test_pack_rejects_unsorted_run():
    _disk, pool = make_pool()
    run = PackedRun(0, 1, 1, [((5,), (1.0,)), ((2,), (1.0,))])
    with pytest.raises(MappingError):
        pack_rtree(pool, 1, [run])


def test_pack_rejects_nonpositive_coordinates():
    _disk, pool = make_pool()
    run = PackedRun(0, 1, 1, [((0,), (1.0,))])
    with pytest.raises(InvalidCoordinateError):
        pack_rtree(pool, 1, [run])


def test_pack_rejects_same_arity_twice():
    _disk, pool = make_pool()
    a = PackedRun(0, 1, 1, sorted_entries([(1,)]))
    b = PackedRun(1, 1, 1, sorted_entries([(2,)]))
    with pytest.raises(MappingError):
        pack_rtree(pool, 2, [a, b])


def test_pack_rejects_wrong_arity_entries():
    _disk, pool = make_pool()
    run = PackedRun(0, 2, 1, [((1,), (1.0,))])
    with pytest.raises(MappingError):
        pack_rtree(pool, 2, [run])


def test_free_tree_releases_pages():
    disk, pool = make_pool()
    entries = sorted_entries([(i,) for i in range(1, 2000)])
    tree = pack_rtree(pool, 1, [PackedRun(0, 1, 1, entries)])
    allocated_before = disk.num_allocated
    freed = free_tree(pool, tree)
    assert freed > 0
    assert disk.num_allocated == allocated_before - freed
    assert tree.root_page_id == -1


def test_hilbert_key_basic_properties():
    # Distinct points get distinct keys on a small grid.
    keys = {hilbert_sort_key((x, y), 2, bits=4)
            for x in range(16) for y in range(16)}
    assert len(keys) == 256
    # Keys are within the curve's range.
    assert all(0 <= k < 256 for k in keys)


def test_hilbert_key_rejects_oversized_coords():
    with pytest.raises(ValueError):
        hilbert_sort_key((1 << 16,), 1, bits=16)


@settings(max_examples=20, deadline=None)
@given(st.sets(st.tuples(st.integers(1, 200), st.integers(1, 200)),
               max_size=400))
def test_pack_then_search_equals_input_property(points):
    _disk, pool = make_pool()
    entries = sorted(
        [(p, (1.0,)) for p in points], key=lambda e: sort_key(e[0], 2)
    )
    tree = pack_rtree(pool, 2, [PackedRun(0, 2, 1, entries)])
    got = sorted(p for _, p, _ in tree.search(Rect((1, 1), (200, 200))))
    assert got == sorted(points)
    tree.check_invariants()
