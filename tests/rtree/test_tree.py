"""Tests for R-tree search and dynamic (Guttman) insertion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidCoordinateError
from repro.rtree.geometry import Rect
from repro.rtree.tree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_tree(dims=2, capacity=512, n_aggs=1):
    disk = DiskManager()
    pool = BufferPool(disk, capacity=capacity)
    return pool, RTree(pool, dims, n_aggs=n_aggs)


def test_empty_tree_search():
    _pool, tree = make_tree()
    assert list(tree.search(Rect((0, 0), (10, 10)))) == []
    assert len(tree) == 0
    assert tree.num_pages == 0


def test_single_insert_and_search():
    _pool, tree = make_tree()
    tree.insert((3, 4), (7.0,))
    hits = list(tree.search(Rect((0, 0), (10, 10))))
    assert hits == [(-1, (3, 4), (7.0,))]
    assert list(tree.search(Rect((4, 4), (10, 10)))) == []


def test_many_inserts_split_and_search_exact():
    _pool, tree = make_tree()
    points = [(x, y) for x in range(1, 31) for y in range(1, 31)]
    random.Random(5).shuffle(points)
    for p in points:
        tree.insert(p, (float(p[0] * p[1]),))
    assert tree.height > 1
    tree.check_invariants()
    hits = {p for _, p, _ in tree.search(Rect((5, 5), (10, 10)))}
    expected = {(x, y) for x in range(5, 11) for y in range(5, 11)}
    assert hits == expected


def test_slice_query_shape():
    """Equality on one dim, open on the other — the paper's slice queries."""
    _pool, tree = make_tree()
    for x in range(1, 50):
        for y in (1, 2, 3):
            tree.insert((x, y), (1.0,))
    hits = [p for _, p, _ in tree.search(Rect((1, 2), (10**9, 2)))]
    assert sorted(hits) == [(x, 2) for x in range(1, 50)]


def test_negative_coordinate_rejected():
    _pool, tree = make_tree()
    with pytest.raises(InvalidCoordinateError):
        tree.insert((-1, 2), (0.0,))


def test_wrong_dims_rejected():
    _pool, tree = make_tree(dims=3)
    with pytest.raises(ValueError):
        tree.insert((1, 2), (0.0,))
    with pytest.raises(ValueError):
        list(tree.search(Rect((0, 0), (1, 1))))


def test_wrong_value_count_rejected():
    _pool, tree = make_tree(n_aggs=2)
    with pytest.raises(ValueError):
        tree.insert((1, 1), (0.0,))


def test_duplicate_points_allowed():
    _pool, tree = make_tree()
    tree.insert((5, 5), (1.0,))
    tree.insert((5, 5), (2.0,))
    hits = list(tree.search(Rect.from_point((5, 5))))
    assert len(hits) == 2


def test_survives_tiny_buffer_pool():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=8)
    tree = RTree(pool, 2)
    points = [(x, y) for x in range(1, 41) for y in range(1, 41)]
    random.Random(9).shuffle(points)
    for p in points:
        tree.insert(p, (1.0,))
    assert pool.stats.evictions > 0
    tree.check_invariants()
    assert len(list(tree.search(Rect((1, 1), (40, 40))))) == 1600


def test_dynamic_leaf_utilization_below_packed():
    _pool, tree = make_tree()
    points = [(x, y) for x in range(1, 41) for y in range(1, 41)]
    random.Random(1).shuffle(points)
    for p in points:
        tree.insert(p, (1.0,))
    util = tree.leaf_utilization()
    assert 0.2 < util < 0.95  # dynamic trees never stay fully packed


def test_three_dimensional():
    _pool, tree = make_tree(dims=3)
    pts = [(x, y, z) for x in range(1, 9) for y in range(1, 9)
           for z in range(1, 9)]
    for p in pts:
        tree.insert(p, (1.0,))
    tree.check_invariants()
    hits = list(tree.search(Rect((1, 1, 4), (8, 8, 4))))
    assert len(hits) == 64


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 60), st.integers(1, 60)),
                max_size=250),
       st.tuples(st.integers(1, 60), st.integers(1, 60)),
       st.tuples(st.integers(1, 60), st.integers(1, 60)))
def test_search_matches_naive_property(points, corner_a, corner_b):
    _pool, tree = make_tree()
    for p in points:
        tree.insert(p, (1.0,))
    lows = tuple(min(a, b) for a, b in zip(corner_a, corner_b))
    highs = tuple(max(a, b) for a, b in zip(corner_a, corner_b))
    rect = Rect(lows, highs)
    got = sorted(p for _, p, _ in tree.search(rect))
    expected = sorted(p for p in points if rect.contains_point(p))
    assert got == expected
