"""The bounded-memory streaming build path (extsort + pack_rtree_stream).

The contract: a streaming build is *observably identical* to the
classic in-memory build — same pages, same extents, same simulated
I/O — while the sort buffer never exceeds the configured budget and
overflow actually spills to temp heap files.
"""

import random

import pytest

from repro.core.cubetree import Cubetree
from repro.core.extsort import (
    ExternalRunSorter,
    build_memory_budget,
    set_build_memory,
)
from repro.relational.view import ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


@pytest.fixture(autouse=True)
def _reset_budget():
    yield
    set_build_memory(None)


def make_pool(capacity=256):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=capacity)


def make_views():
    return [
        ViewDefinition("V_p", ("partkey",)),
        ViewDefinition("V_ps", ("partkey", "suppkey")),
    ]


def make_data(seed=11, n_1d=2500, n_2d=3000):
    rng = random.Random(seed)
    one_d = {rng.randint(1, 10_000): None for _ in range(n_1d)}
    two_d = {
        (rng.randint(1, 90), rng.randint(1, 90)): None for _ in range(n_2d)
    }
    return {
        "V_p": [(key, float(key)) for key in one_d],
        "V_ps": [(a, b, float(a + b)) for a, b in two_d],
    }


def tree_fingerprint(cubetree):
    return (
        cubetree.num_pages,
        dict(cubetree.tree.view_extents),
        [
            (leaf.view_id, tuple(leaf.points), tuple(leaf.values))
            for leaf in cubetree.tree.scan_leaf_chain()
        ],
    )


# ----------------------------------------------------------------------
# the sorter itself
# ----------------------------------------------------------------------
def test_sorter_orders_and_spills():
    rng = random.Random(3)
    values = [rng.randint(-(10**12), 10**12) for _ in range(5000)]
    sorter = ExternalRunSorter(key=lambda v: v, max_buffered=256)
    for value in values:
        sorter.add(value)
    assert list(sorter.stream()) == sorted(values)
    assert sorter.peak_buffered <= 256
    assert sorter.spill_runs == 5000 // 256
    assert sorter.spilled_entries == sorter.spill_runs * 256


def test_sorter_without_spill():
    sorter = ExternalRunSorter(key=lambda v: v, max_buffered=100)
    for value in (3, 1, 2):
        sorter.add(value)
    assert list(sorter.stream()) == [1, 2, 3]
    assert sorter.spill_runs == 0


def test_sorter_duplicate_keys_survive():
    sorter = ExternalRunSorter(key=lambda v: v[0], max_buffered=2)
    entries = [(1, "a"), (1, "b"), (0, "c"), (1, "d"), (0, "e")]
    for entry in entries:
        sorter.add(entry)
    streamed = list(sorter.stream())
    assert sorted(streamed) == sorted(entries)
    assert [key for key, _ in streamed] == [0, 0, 1, 1, 1]


def test_sorter_rejects_bad_budget():
    with pytest.raises(ValueError):
        ExternalRunSorter(key=lambda v: v, max_buffered=0)


# ----------------------------------------------------------------------
# budget configuration
# ----------------------------------------------------------------------
def test_budget_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_BUILD_MEMORY", raising=False)
    assert build_memory_budget() is None
    monkeypatch.setenv("REPRO_BUILD_MEMORY", "4096")
    assert build_memory_budget() == 4096
    monkeypatch.setenv("REPRO_BUILD_MEMORY", "8k")
    assert build_memory_budget() == 8000
    monkeypatch.setenv("REPRO_BUILD_MEMORY", "2m")
    assert build_memory_budget() == 2_000_000
    monkeypatch.setenv("REPRO_BUILD_MEMORY", "off")
    assert build_memory_budget() is None
    monkeypatch.setenv("REPRO_BUILD_MEMORY", "lots")
    with pytest.raises(ValueError):
        build_memory_budget()
    monkeypatch.setenv("REPRO_BUILD_MEMORY", "-5")
    with pytest.raises(ValueError):
        build_memory_budget()


def test_budget_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_BUILD_MEMORY", "4096")
    set_build_memory(32)
    assert build_memory_budget() == 32
    set_build_memory(None)
    assert build_memory_budget() == 4096


# ----------------------------------------------------------------------
# streaming Cubetree build
# ----------------------------------------------------------------------
def test_streaming_build_matches_classic():
    data = make_data()
    _d1, pool1 = make_pool()
    classic = Cubetree(pool1, 3, make_views())
    classic.build(data)

    _d2, pool2 = make_pool()
    streamed = Cubetree(pool2, 3, make_views())
    report = streamed.build_streaming(data, max_buffered=400)

    assert tree_fingerprint(classic) == tree_fingerprint(streamed)
    assert report.within_budget()
    assert report.peak_buffered <= 400
    assert report.spill_runs > 0
    assert report.entries == sum(len(rows) for rows in data.values())


def test_streaming_build_charges_identical_io():
    data = make_data()
    disk1, pool1 = make_pool()
    classic = Cubetree(pool1, 3, make_views())
    classic.build(data)

    disk2, pool2 = make_pool()
    streamed = Cubetree(pool2, 3, make_views())
    streamed.build_streaming(data, max_buffered=400)
    assert (
        disk1.cost_model.stats.simulated_ms
        == disk2.cost_model.stats.simulated_ms
    )


def test_build_gates_on_budget():
    data = make_data(n_1d=400, n_2d=500)
    set_build_memory(64)
    _d, pool = make_pool()
    gated = Cubetree(pool, 3, make_views())
    gated.build(data)  # takes the streaming path
    set_build_memory(None)

    _d2, pool2 = make_pool()
    classic = Cubetree(pool2, 3, make_views())
    classic.build(data)
    assert tree_fingerprint(gated) == tree_fingerprint(classic)


def test_streaming_build_requires_budget():
    _d, pool = make_pool()
    cubetree = Cubetree(pool, 3, make_views())
    with pytest.raises(ValueError):
        cubetree.build_streaming({"V_p": [], "V_ps": []})


def test_streaming_build_empty_and_absent_views():
    from repro.rtree.tree import EMPTY_EXTENT

    _d, pool = make_pool()
    cubetree = Cubetree(pool, 3, make_views())
    report = cubetree.build_streaming(
        {"V_p": [], "V_ps": [(1, 2, 3.0)]}, max_buffered=16
    )
    assert report.entries == 1
    assert cubetree.tree.view_extents[1] == EMPTY_EXTENT
    assert cubetree.has_run("V_ps")
    assert list(cubetree.query("V_p", {}, fast=True)) == []
    assert list(cubetree.query("V_ps", {}, fast=True)) == [((1, 2), (3.0,))]


def test_streaming_build_queries_identically():
    data = make_data(n_1d=600, n_2d=800)
    _d, pool = make_pool()
    streamed = Cubetree(pool, 3, make_views())
    streamed.build_streaming(data, max_buffered=128)
    _d2, pool2 = make_pool()
    classic = Cubetree(pool2, 3, make_views())
    classic.build(data)
    for fast in (False, True):
        assert list(
            streamed.query("V_ps", {"partkey": (1, 40)}, fast=fast)
        ) == list(classic.query("V_ps", {"partkey": (1, 40)}, fast=fast))
