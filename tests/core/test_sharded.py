"""Unit tests for the sharded Cubetree forest.

Covers the partitioning rule and router pruning helpers, the
critical-path I/O combination, single-shard routing of leading-coordinate
point queries, the sharded checkpoint round-trip (atomic multi-shard
manifest), the sharded fsck (including residue-disjointness detection),
and crash injection proving a mid-publish crash leaves *all* shards on
the old generation together.
"""

import glob
import os

import pytest

from repro.analysis.fsck import (
    SHARD_RESIDUE,
    FsckReport,
    _check_shard_residues,
    check_checkpoint,
    check_database,
    check_sharded_engine,
)
from repro.core.persistence import (
    PersistenceError,
    load_any_engine,
    load_engine,
    load_sharded_engine,
    save_database,
    verify_checkpoint,
)
from repro.core.sharded import (
    ShardedCubetreeEngine,
    combine_io,
    partition_state_rows,
    shard_of,
    shard_targets,
)
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.storage.iomodel import IOStats
from repro.storage.wal import CrashError, CrashPoint
from repro.warehouse.tpcd import TPCDGenerator

VIEWS = [
    ViewDefinition("V_ps", ("partkey", "suppkey")),
    ViewDefinition("V_s", ("suppkey",)),
    ViewDefinition("V_none", ()),
]


@pytest.fixture(scope="module")
def warehouse():
    gen = TPCDGenerator(scale_factor=0.0005, seed=31)
    data = gen.generate()
    delta = gen.generate_increment(0.25)
    return data, delta


def _build(data, shards, **kwargs):
    engine = ShardedCubetreeEngine(
        data.schema, buffer_pages=64, shards=shards, **kwargs
    )
    engine.materialize(
        VIEWS, data.facts,
        replicate={"V_ps": [("suppkey", "partkey")]},
    )
    return engine


# ----------------------------------------------------------------------
# partitioning rule + pruning helpers
# ----------------------------------------------------------------------
def test_shard_of_is_residue_mod_n():
    assert [shard_of(v, 3) for v in (1, 2, 3, 4, 5, 6)] == [1, 2, 0, 1, 2, 0]


def test_partition_keeps_groups_whole_and_preserves_order():
    view = ViewDefinition("v_ab", ("ka", "kb"))
    rows = [(5, 1, 2.0), (3, 1, 1.0), (5, 2, 4.0), (4, 9, 8.0)]
    parts = partition_state_rows(view, rows, 3)
    assert parts[0] == [(3, 1, 1.0)]
    assert parts[1] == [(4, 9, 8.0)]
    assert parts[2] == [(5, 1, 2.0), (5, 2, 4.0)]
    # N=1 passes through unchanged.
    assert partition_state_rows(view, rows, 1) == [rows]


def test_partition_apex_lives_in_shard_zero():
    apex = ViewDefinition("v_none", ())
    parts = partition_state_rows(apex, [(42.0,)], 4)
    assert parts[0] == [(42.0,)]
    assert all(not p for p in parts[1:])


def test_shard_targets_point_range_and_unbound():
    assert shard_targets(4, None) == [0, 1, 2, 3]
    assert shard_targets(4, 7) == [3]
    assert shard_targets(4, (5, 6)) == [1, 2]
    assert shard_targets(4, (6, 5)) == []          # empty range
    assert shard_targets(4, (1, 9)) == [0, 1, 2, 3]  # wider than N
    assert shard_targets(1, None) == [0]


def test_combine_io_sums_counters_takes_max_time():
    a = IOStats(sequential_reads=10, random_reads=2, simulated_ms=50.0)
    b = IOStats(sequential_writes=4, random_writes=1, simulated_ms=80.0)
    combined = combine_io([a, b])
    assert combined.sequential_reads == 10
    assert combined.random_reads == 2
    assert combined.sequential_writes == 4
    assert combined.random_writes == 1
    assert combined.simulated_ms == 80.0
    # Single delta passes through exactly.
    one = combine_io([a])
    assert one.simulated_ms == a.simulated_ms
    assert one.sequential_reads == a.sequential_reads


# ----------------------------------------------------------------------
# scatter-gather routing
# ----------------------------------------------------------------------
def test_point_query_on_leading_coordinate_touches_one_shard(warehouse):
    data, _delta = warehouse
    engine = _build(data, shards=4)
    before = [shard.routed_queries for shard in engine.shards]
    # Routes to V_s, whose leading (only) group coordinate is bound.
    result = engine.query(SliceQuery((), (("suppkey", 3),)))
    touched = [
        i
        for i, shard in enumerate(engine.shards)
        if shard.routed_queries > before[i]
    ]
    assert touched == [3]
    assert len(result.rows) == 1


def test_unbound_query_scatters_to_all_shards_and_merges(warehouse):
    data, _delta = warehouse
    engine = _build(data, shards=4)
    single = ShardedCubetreeEngine(data.schema, buffer_pages=64, shards=1)
    single.materialize(
        VIEWS, data.facts,
        replicate={"V_ps": [("suppkey", "partkey")]},
    )
    for query in (
        SliceQuery(("partkey", "suppkey"), ()),
        SliceQuery(("suppkey",), ()),
        SliceQuery((), ()),
        SliceQuery(("partkey",), (("suppkey", 2),)),
    ):
        assert engine.query(query).rows == single.query(query).rows


def test_view_sizes_and_pages_aggregate_across_shards(warehouse):
    data, _delta = warehouse
    sharded = _build(data, shards=3)
    single = _build(data, shards=1)
    assert sharded.view_sizes() == single.view_sizes()
    assert sharded.storage_pages() >= single.storage_pages()
    stats = sharded.shard_stats()
    assert [entry["shard"] for entry in stats] == [0, 1, 2]
    assert sum(entry["rows"] for entry in stats) == sum(
        single.view_sizes().values()
    )


# ----------------------------------------------------------------------
# persistence: one manifest commits all shards
# ----------------------------------------------------------------------
def test_sharded_checkpoint_roundtrip(tmp_path, warehouse):
    data, delta = warehouse
    engine = _build(data, shards=3)
    directory = str(tmp_path / "db")
    save_database(engine, directory)

    assert verify_checkpoint(directory).ok
    # The unsharded loader refuses with a pointed error.
    with pytest.raises(PersistenceError, match="sharded"):
        load_engine(directory)

    recovered = load_any_engine(directory)
    assert isinstance(recovered, ShardedCubetreeEngine)
    assert recovered.num_shards == 3
    assert recovered.view_sizes() == engine.view_sizes()
    query = SliceQuery(("suppkey",), ())
    assert recovered.query(query).rows == engine.query(query).rows

    # Update + second generation round-trips too.
    recovered.update(delta)
    save_database(recovered, directory)
    reopened = load_sharded_engine(directory)
    assert reopened.query(query).rows == recovered.query(query).rows


def test_sharded_checkpoint_detects_per_shard_corruption(
    tmp_path, warehouse
):
    data, _delta = warehouse
    engine = _build(data, shards=3)
    directory = str(tmp_path / "db")
    save_database(engine, directory)

    pages = glob.glob(
        os.path.join(directory, "gen-*", "shard-01", "pages.bin")
    )[0]
    with open(pages, "r+b") as handle:
        handle.seek(64)
        byte = handle.read(1)
        handle.seek(64)
        handle.write(bytes([byte[0] ^ 0xFF]))

    report = verify_checkpoint(directory)
    assert not report.ok
    assert any("shard-01" in problem for problem in report.problems)
    fsck = check_checkpoint(directory)
    assert not fsck.ok
    assert "checkpoint-corrupt" in fsck.codes()


# ----------------------------------------------------------------------
# fsck: residue disjointness
# ----------------------------------------------------------------------
def test_sharded_fsck_clean_engine_passes(warehouse):
    data, _delta = warehouse
    engine = _build(data, shards=3)
    report = check_sharded_engine(engine)
    assert report.ok, report.format()
    assert report.trees_checked == len(engine.shards) * 2
    # check_database dispatches on the engine type.
    assert check_database(engine).ok


def test_fsck_flags_entry_on_wrong_shard(warehouse):
    data, _delta = warehouse
    engine = _build(data, shards=3)
    # Shard 1's tree audited as if it were shard 2: every entry's
    # residue is now wrong, which is exactly the misplaced-entry shape.
    tree = engine.shards[1].forest.cubetrees[0]
    report = FsckReport()
    _check_shard_residues(tree, 2, 3, "shard2/R1", report)
    assert not report.ok
    assert SHARD_RESIDUE in report.codes()


def test_fsck_checkpoint_covers_sharded_layout(tmp_path, warehouse):
    data, _delta = warehouse
    engine = _build(data, shards=2)
    directory = str(tmp_path / "db")
    save_database(engine, directory)
    report = check_checkpoint(directory)
    assert report.ok, report.format()
    assert report.trees_checked == 4  # 2 shards x 2 cubetrees


# ----------------------------------------------------------------------
# crash injection: the manifest commit is all-or-nothing across shards
# ----------------------------------------------------------------------
def _all_shard_answers(engine, queries):
    return [engine.query(q).rows for q in queries]


def test_mid_publish_crash_leaves_all_shards_on_old_generation(
    tmp_path, warehouse
):
    """Crash the publish at every site before the manifest rename: the
    reopened database must answer from the *old* generation for every
    query on every shard — no shard may advance alone."""
    data, delta = warehouse
    directory = str(tmp_path / "db")
    engine = _build(data, shards=3)
    save_database(engine, directory)

    queries = [
        SliceQuery((), (("suppkey", s),)) for s in (1, 2, 3)
    ] + [SliceQuery(("suppkey",), ()), SliceQuery((), ())]
    live = load_any_engine(directory)
    pre = _all_shard_answers(live, queries)
    live.update(delta)
    post = _all_shard_answers(live, queries)
    assert post != pre

    # Count the crashable sites of a full sharded checkpoint.
    counter_sites = []

    class Counting(CrashPoint):
        def hit(self, context=""):
            counter_sites.append(context)
            super().hit(context)

    save_database(live, str(tmp_path / "probe"), crash_point=Counting())
    sites = len(counter_sites)
    assert any(ctx.startswith("shard 2 ") for ctx in counter_sites)
    prune_sites = 1  # only the post-commit prune runs after the rename

    for k in range(sites - prune_sites):
        point = CrashPoint()
        point.arm(after=k)
        with pytest.raises(CrashError):
            save_database(live, directory, crash_point=point)
        assert point.fired
        recovered = load_any_engine(directory)
        assert recovered.num_shards == 3
        assert _all_shard_answers(recovered, queries) == pre, f"site {k}"
        assert verify_checkpoint(directory).ok, f"site {k}"

    # Crash after the rename (prune): every shard is on the NEW
    # generation together.
    point = CrashPoint()
    point.arm(after=sites - 1)
    with pytest.raises(CrashError):
        save_database(live, directory, crash_point=point)
    recovered = load_any_engine(directory)
    assert _all_shard_answers(recovered, queries) == post

    # The directory is not wedged.
    save_database(live, directory)
    assert verify_checkpoint(directory).ok
