"""Tests for capabilities the paper sketches beyond the main experiments.

* Views from *different fact tables* sharing one Cubetree ("one may
  visualize an index containing arbitrary aggregate data, originating even
  from different fact tables", Sec. 2.2).
* File-backed disks: "bytes on disk" is literal, and the data round-trips
  through a real file.
* Multiple aggregate functions per point (footnote 3).
"""

import os

from repro.core.cubetree import Cubetree
from repro.core.engine import CubetreeEngine
from repro.query.slice import SliceQuery
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.warehouse.tpcd import TPCDGenerator


def test_views_from_different_fact_tables_share_a_cubetree():
    """A sales view (arity 2) and a returns view (arity 1) from two
    different fact tables coexist in one index space."""
    disk = DiskManager()
    pool = BufferPool(disk, capacity=128)
    sales = ViewDefinition("V_sales_ps", ("partkey", "suppkey"))
    returns = ViewDefinition(
        "V_returns_p", ("partkey",),
        aggregates=(AggSpec(AggFunc.SUM, "returned_qty"),),
    )
    tree = Cubetree(pool, 2, [sales, returns])
    tree.build({
        "V_sales_ps": [(1, 1, 50.0), (2, 1, 30.0)],
        "V_returns_p": [(1, 5.0), (3, 2.0)],
    })
    assert dict(tree.query("V_sales_ps", {"suppkey": 1})) == {
        (1, 1): (50.0,), (2, 1): (30.0,),
    }
    assert dict(tree.query("V_returns_p", {})) == {
        (1,): (5.0,), (3,): (2.0,),
    }
    # Independent updates per fact table's delta.
    tree.update({"V_returns_p": [(1, 1.0)]})
    assert dict(tree.query("V_returns_p", {}))[(1,)] == (6.0,)
    assert dict(tree.query("V_sales_ps", {}))[(1, 1)] == (50.0,)


def test_engine_on_file_backed_disk(tmp_path):
    """The Cubetree engine runs unchanged on a real file; bytes on disk
    are literal."""
    path = str(tmp_path / "cubetrees.db")
    data = TPCDGenerator(scale_factor=0.0005, seed=3).generate()
    disk = DiskManager(path=path)
    engine = CubetreeEngine(data.schema, disk=disk, buffer_pages=64)
    views = [ViewDefinition("V_ps", ("partkey", "suppkey")),
             ViewDefinition("V_none", ())]
    report = engine.materialize(views, data.facts)
    engine.pool.flush_all()

    assert os.path.getsize(path) > 0
    # Page accounting matches the physical file (modulo trailing pages
    # that were allocated but hold empty structures).
    assert os.path.getsize(path) <= disk.bytes_allocated + 4096

    total = engine.query(SliceQuery((), ())).scalar()
    assert total == float(sum(r[-1] for r in data.facts))
    disk.delete_backing_file()
    assert not os.path.exists(path)


def test_multiple_aggregates_per_point_end_to_end():
    """Footnote 3: points carry several aggregate functions at once."""
    data = TPCDGenerator(scale_factor=0.0005, seed=5).generate()
    aggs = (
        AggSpec(AggFunc.SUM, "quantity"),
        AggSpec(AggFunc.COUNT),
        AggSpec(AggFunc.MIN, "quantity"),
        AggSpec(AggFunc.MAX, "quantity"),
        AggSpec(AggFunc.AVG, "quantity"),
    )
    views = [ViewDefinition("V_s", ("suppkey",), aggregates=aggs)]
    engine = CubetreeEngine(data.schema)
    engine.materialize(views, data.facts)

    suppkey = data.facts[0][1]
    result = engine.query(SliceQuery((), (("suppkey", suppkey),)))
    quantities = [float(r[3]) for r in data.facts if r[1] == suppkey]
    row = result.rows[0]
    assert row[0] == sum(quantities)              # sum
    assert row[1] == len(quantities)              # count
    assert row[2] == min(quantities)              # min
    assert row[3] == max(quantities)              # max
    assert abs(row[4] - sum(quantities) / len(quantities)) < 1e-9  # avg


def test_multiple_aggregates_survive_merge_pack():
    data = TPCDGenerator(scale_factor=0.0005, seed=6)
    base = data.generate()
    delta = data.generate_increment(0.2)
    aggs = (AggSpec(AggFunc.SUM, "quantity"), AggSpec(AggFunc.COUNT),
            AggSpec(AggFunc.MIN, "quantity"), AggSpec(AggFunc.MAX, "quantity"))
    views = [ViewDefinition("V_s", ("suppkey",), aggregates=aggs)]
    engine = CubetreeEngine(base.schema)
    engine.materialize(views, base.facts)
    engine.update(delta)

    all_rows = list(base.facts) + list(delta)
    suppkey = all_rows[0][1]
    quantities = [float(r[3]) for r in all_rows if r[1] == suppkey]
    row = engine.query(SliceQuery((), (("suppkey", suppkey),))).rows[0]
    assert row == (sum(quantities), float(len(quantities)),
                   min(quantities), max(quantities))


def test_multi_measure_views_end_to_end():
    """Cubetree engine serving views over two measure columns."""
    gen = TPCDGenerator(scale_factor=0.0005, seed=31, include_price=True)
    data = gen.generate()
    views = [
        ViewDefinition(
            "V_s", ("suppkey",),
            aggregates=(AggSpec(AggFunc.SUM, "quantity"),
                        AggSpec(AggFunc.SUM, "extendedprice")),
        ),
        ViewDefinition(
            "V_none", (),
            aggregates=(AggSpec(AggFunc.SUM, "quantity"),
                        AggSpec(AggFunc.SUM, "extendedprice")),
        ),
    ]
    engine = CubetreeEngine(data.schema)
    engine.materialize(views, data.facts)

    result = engine.query(SliceQuery((), ()))
    assert result.rows == [(
        float(sum(r[3] for r in data.facts)),
        float(sum(r[4] for r in data.facts)),
    )]

    # Merge-pack keeps both measures consistent.
    delta = gen.generate_increment(0.2)
    engine.update(delta)
    all_rows = list(data.facts) + list(delta)
    result = engine.query(SliceQuery((), ()))
    assert result.rows == [(
        float(sum(r[3] for r in all_rows)),
        float(sum(r[4] for r in all_rows)),
    )]


def test_multi_measure_sql_binding():
    from repro.sql import parse_view

    gen = TPCDGenerator(scale_factor=0.0005, seed=31, include_price=True)
    data = gen.generate()
    view = parse_view(
        "select suppkey, sum(quantity), avg(extendedprice) from F "
        "group by suppkey",
        data.schema, "V_rev",
    )
    assert view.aggregates[1].attribute == "extendedprice"
