"""Tests for saving and reopening a Cubetree database."""

import json
import os

import pytest

from repro.core.engine import CubetreeEngine
from repro.core.persistence import (
    PersistenceError,
    load_engine,
    save_engine,
)
from repro.query.generator import RandomQueryGenerator
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator

VIEWS = [
    ViewDefinition("V_ps", ("partkey", "suppkey")),
    ViewDefinition("V_s", ("suppkey",)),
    ViewDefinition("V_none", ()),
]


@pytest.fixture()
def saved(tmp_path):
    gen = TPCDGenerator(scale_factor=0.0005, seed=23)
    data = gen.generate()
    engine = CubetreeEngine(data.schema, buffer_pages=128)
    engine.materialize(
        VIEWS, data.facts,
        replicate={"V_ps": [("suppkey", "partkey")]},
    )
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    return gen, data, engine, directory


def test_save_creates_files(saved):
    _gen, _data, _engine, directory = saved
    assert os.path.exists(os.path.join(directory, "meta.json"))
    assert os.path.exists(os.path.join(directory, "pages.bin"))
    assert os.path.getsize(os.path.join(directory, "pages.bin")) > 0


def test_reopened_engine_answers_identically(saved):
    _gen, data, original, directory = saved
    reopened = load_engine(directory)
    qgen = RandomQueryGenerator(data.schema, seed=3)
    for node in (("partkey", "suppkey"), ("suppkey",), ("partkey",)):
        for query in qgen.generate_for_node(node, 8, include_unbound=True):
            assert reopened.query(query).rows == original.query(query).rows


def test_reopened_engine_accepts_updates(saved):
    gen, data, original, directory = saved
    reopened = load_engine(directory)
    increment = gen.generate_increment(0.2)
    reopened.update(increment)
    expected = float(
        sum(r[-1] for r in data.facts) + sum(r[-1] for r in increment)
    )
    assert reopened.query(SliceQuery((), ())).scalar() == expected


def test_reopened_view_sizes_and_replicas(saved):
    _gen, _data, original, directory = saved
    reopened = load_engine(directory)
    assert reopened.view_sizes() == original.view_sizes()
    assert reopened.replicas == original.replicas
    assert reopened.forest.num_trees == original.forest.num_trees


def test_hierarchies_survive_roundtrip(tmp_path):
    data = TPCDGenerator(scale_factor=0.0005, seed=8).generate()
    hierarchies = {"brand": data.hierarchy("partkey", "brand")}
    engine = CubetreeEngine(data.schema, hierarchies=hierarchies)
    engine.materialize([ViewDefinition("V_p", ("partkey",)),
                        ViewDefinition("V_none", ())], data.facts)
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    reopened = load_engine(directory)
    query = SliceQuery(("brand",), ())
    assert reopened.query(query).rows == engine.query(query).rows


def test_save_unloaded_engine_raises(tmp_path):
    data = TPCDGenerator(scale_factor=0.0005, seed=2).generate()
    engine = CubetreeEngine(data.schema)
    with pytest.raises(PersistenceError):
        save_engine(engine, str(tmp_path / "db"))


def test_load_missing_directory_raises(tmp_path):
    with pytest.raises(PersistenceError):
        load_engine(str(tmp_path / "nope"))


def test_load_bad_version_raises(saved, tmp_path):
    _gen, _data, _engine, directory = saved
    meta_path = os.path.join(directory, "meta.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    meta["format_version"] = 999
    with open(meta_path, "w") as handle:
        json.dump(meta, handle)
    with pytest.raises(PersistenceError):
        load_engine(directory)
