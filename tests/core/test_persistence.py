"""Tests for saving and reopening a Cubetree database (v2 generations)."""

import json
import os
import shutil
import zlib

import pytest

from repro.constants import PAGE_SIZE
from repro.core.engine import CubetreeEngine
from repro.core.persistence import (
    CHECKSUMS_NAME,
    CorruptCheckpointError,
    MANIFEST_NAME,
    META_NAME,
    PAGES_NAME,
    PersistenceError,
    load_engine,
    save_engine,
    verify_checkpoint,
)
from repro.query.generator import RandomQueryGenerator
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator

VIEWS = [
    ViewDefinition("V_ps", ("partkey", "suppkey")),
    ViewDefinition("V_s", ("suppkey",)),
    ViewDefinition("V_none", ()),
]


def _newest_gen(directory):
    gens = sorted(
        entry for entry in os.listdir(directory) if entry.startswith("gen-")
    )
    assert gens, f"no generations in {directory}"
    return os.path.join(directory, gens[-1])


def _rewrite_meta(gen_path, mutate):
    """Edit a committed generation's catalog, keeping the manifest honest.

    Lets tests exercise *semantic* catalog validation (the strict loader)
    without tripping the checksum layer first.
    """
    meta_path = os.path.join(gen_path, META_NAME)
    with open(meta_path) as handle:
        meta = json.load(handle)
    mutate(meta)
    payload = (
        json.dumps(meta, indent=1, sort_keys=True, ensure_ascii=True) + "\n"
    ).encode("ascii")
    with open(meta_path, "wb") as handle:
        handle.write(payload)
    manifest_path = os.path.join(gen_path, MANIFEST_NAME)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    manifest["files"][META_NAME] = {
        "bytes": len(payload),
        "crc32": zlib.crc32(payload),
    }
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)


@pytest.fixture()
def saved(tmp_path):
    gen = TPCDGenerator(scale_factor=0.0005, seed=23)
    data = gen.generate()
    engine = CubetreeEngine(data.schema, buffer_pages=128)
    engine.materialize(
        VIEWS, data.facts,
        replicate={"V_ps": [("suppkey", "partkey")]},
    )
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    return gen, data, engine, directory


def test_save_creates_committed_generation(saved):
    _gen, _data, _engine, directory = saved
    gen_path = _newest_gen(directory)
    for name in (META_NAME, PAGES_NAME, CHECKSUMS_NAME, MANIFEST_NAME):
        assert os.path.exists(os.path.join(gen_path, name)), name
    assert os.path.getsize(os.path.join(gen_path, PAGES_NAME)) > 0
    # One uint32 CRC per page of the dump.
    pages = os.path.getsize(os.path.join(gen_path, PAGES_NAME)) // PAGE_SIZE
    assert os.path.getsize(os.path.join(gen_path, CHECKSUMS_NAME)) == 4 * pages
    report = verify_checkpoint(directory)
    assert report.ok, report.format()
    assert report.generation == 1
    assert report.pages_checked == pages


def test_reopened_engine_answers_identically(saved):
    _gen, data, original, directory = saved
    reopened = load_engine(directory)
    qgen = RandomQueryGenerator(data.schema, seed=3)
    for node in (("partkey", "suppkey"), ("suppkey",), ("partkey",)):
        for query in qgen.generate_for_node(node, 8, include_unbound=True):
            assert reopened.query(query).rows == original.query(query).rows


def test_reopened_engine_accepts_updates(saved):
    gen, data, original, directory = saved
    reopened = load_engine(directory)
    increment = gen.generate_increment(0.2)
    reopened.update(increment)
    expected = float(
        sum(r[-1] for r in data.facts) + sum(r[-1] for r in increment)
    )
    assert reopened.query(SliceQuery((), ())).scalar() == expected


def test_reopened_view_sizes_and_replicas(saved):
    _gen, _data, original, directory = saved
    reopened = load_engine(directory)
    assert reopened.view_sizes() == original.view_sizes()
    assert reopened.replicas == original.replicas
    assert reopened.forest.num_trees == original.forest.num_trees


def test_hierarchies_survive_roundtrip(tmp_path):
    data = TPCDGenerator(scale_factor=0.0005, seed=8).generate()
    hierarchies = {"brand": data.hierarchy("partkey", "brand")}
    engine = CubetreeEngine(data.schema, hierarchies=hierarchies)
    engine.materialize([ViewDefinition("V_p", ("partkey",)),
                        ViewDefinition("V_none", ())], data.facts)
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    reopened = load_engine(directory)
    query = SliceQuery(("brand",), ())
    assert reopened.query(query).rows == engine.query(query).rows


def test_save_unloaded_engine_raises(tmp_path):
    data = TPCDGenerator(scale_factor=0.0005, seed=2).generate()
    engine = CubetreeEngine(data.schema)
    with pytest.raises(PersistenceError):
        save_engine(engine, str(tmp_path / "db"))


def test_load_missing_directory_raises(tmp_path):
    with pytest.raises(PersistenceError):
        load_engine(str(tmp_path / "nope"))


# ----------------------------------------------------------------------
# generations, retention, and the engine convenience wrapper
# ----------------------------------------------------------------------
def test_each_save_is_a_new_generation(saved):
    _gen, _data, engine, directory = saved
    first = _newest_gen(directory)
    second = save_engine(engine, directory)
    assert second != first
    assert os.path.exists(first)  # previous generation survives
    assert verify_checkpoint(directory).generation == 2


def test_retention_prunes_oldest_committed_generations(saved):
    _gen, _data, engine, directory = saved
    for _ in range(3):
        save_engine(engine, directory, retain=2)
    gens = sorted(
        entry for entry in os.listdir(directory) if entry.startswith("gen-")
    )
    assert gens == ["gen-000003", "gen-000004"]


def test_engine_checkpoint_method(saved):
    _gen, _data, engine, directory = saved
    gen_path = engine.checkpoint(directory)
    assert os.path.exists(os.path.join(gen_path, MANIFEST_NAME))
    assert load_engine(directory).view_sizes() == engine.view_sizes()


def test_partial_generation_is_discarded_on_load(saved):
    _gen, _data, engine, directory = saved
    expected = engine.query(SliceQuery((), ())).scalar()
    # Simulate crash debris: a newer generation that never committed.
    partial = os.path.join(directory, "gen-000009")
    os.makedirs(partial)
    with open(os.path.join(partial, PAGES_NAME), "wb") as handle:
        handle.write(b"\x00" * 100)
    reopened = load_engine(directory)
    assert reopened.query(SliceQuery((), ())).scalar() == expected
    report = verify_checkpoint(directory)
    assert report.ok
    assert report.partial_generations == ["gen-000009"]


# ----------------------------------------------------------------------
# corruption and torn checkpoints are detected, not opened
# ----------------------------------------------------------------------
def test_bitflip_in_pages_is_detected(saved):
    _gen, _data, _engine, directory = saved
    pages_path = os.path.join(_newest_gen(directory), PAGES_NAME)
    with open(pages_path, "r+b") as handle:
        handle.seek(PAGE_SIZE + 17)
        byte = handle.read(1)
        handle.seek(PAGE_SIZE + 17)
        handle.write(bytes([byte[0] ^ 0xFF]))
    report = verify_checkpoint(directory)
    assert not report.ok
    assert any("page 1" in problem for problem in report.problems)
    with pytest.raises(CorruptCheckpointError):
        load_engine(directory)


def test_truncated_pages_is_detected(saved):
    _gen, _data, _engine, directory = saved
    pages_path = os.path.join(_newest_gen(directory), PAGES_NAME)
    with open(pages_path, "r+b") as handle:
        handle.truncate(os.path.getsize(pages_path) - PAGE_SIZE - 7)
    assert not verify_checkpoint(directory).ok
    with pytest.raises(CorruptCheckpointError):
        load_engine(directory)


def test_tampered_meta_is_detected(saved):
    _gen, _data, _engine, directory = saved
    meta_path = os.path.join(_newest_gen(directory), META_NAME)
    with open(meta_path, "a") as handle:
        handle.write(" ")
    assert not verify_checkpoint(directory).ok
    with pytest.raises(CorruptCheckpointError):
        load_engine(directory)


def test_load_bad_manifest_version_raises(saved):
    _gen, _data, _engine, directory = saved
    manifest_path = os.path.join(_newest_gen(directory), MANIFEST_NAME)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    manifest["format_version"] = 999
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)
    with pytest.raises(PersistenceError):
        load_engine(directory)


# ----------------------------------------------------------------------
# strict catalog validation (no silent zip-truncation)
# ----------------------------------------------------------------------
def test_tree_state_count_mismatch_rejected(saved):
    _gen, _data, _engine, directory = saved
    _rewrite_meta(
        _newest_gen(directory), lambda meta: meta["trees"].pop()
    )
    with pytest.raises(PersistenceError, match="tree state"):
        load_engine(directory)


def test_allocation_count_mismatch_rejected(saved):
    _gen, _data, _engine, directory = saved
    _rewrite_meta(
        _newest_gen(directory), lambda meta: meta["allocation"].pop()
    )
    with pytest.raises(PersistenceError, match="allocation"):
        load_engine(directory)


def test_unknown_size_key_rejected(saved):
    _gen, _data, _engine, directory = saved

    def rename_size(meta):
        meta["sizes"]["V_ghost"] = meta["sizes"].pop("V_s")

    _rewrite_meta(_newest_gen(directory), rename_size)
    with pytest.raises(PersistenceError, match="V_ghost"):
        load_engine(directory)


def test_missing_size_key_rejected(saved):
    _gen, _data, _engine, directory = saved
    _rewrite_meta(
        _newest_gen(directory), lambda meta: meta["sizes"].pop("V_none")
    )
    with pytest.raises(PersistenceError, match="V_none"):
        load_engine(directory)


# ----------------------------------------------------------------------
# canonical metadata: save -> load -> save is byte-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [23, 8, 51])
def test_meta_roundtrip_is_byte_identical(tmp_path, seed):
    gen = TPCDGenerator(scale_factor=0.0005, seed=seed)
    data = gen.generate()
    hierarchies = {"brand": data.hierarchy("partkey", "brand")}
    engine = CubetreeEngine(data.schema, hierarchies=hierarchies)
    engine.materialize(
        VIEWS, data.facts,
        replicate={"V_ps": [("suppkey", "partkey")]},
    )
    directory = str(tmp_path / "db")
    first = save_engine(engine, directory)
    second = save_engine(load_engine(directory), directory)
    with open(os.path.join(first, META_NAME), "rb") as handle:
        meta_a = handle.read()
    with open(os.path.join(second, META_NAME), "rb") as handle:
        meta_b = handle.read()
    assert meta_a == meta_b
    with open(os.path.join(first, PAGES_NAME), "rb") as handle:
        pages_a = handle.read()
    with open(os.path.join(second, PAGES_NAME), "rb") as handle:
        pages_b = handle.read()
    assert pages_a == pages_b


# ----------------------------------------------------------------------
# v1 flat-layout compatibility
# ----------------------------------------------------------------------
def _downgrade_to_v1(directory):
    """Rewrite a v2 database as the flat v1 layout it replaced."""
    gen_path = _newest_gen(directory)
    with open(os.path.join(gen_path, META_NAME)) as handle:
        meta = json.load(handle)
    meta["format_version"] = 1
    shutil.copy(
        os.path.join(gen_path, PAGES_NAME),
        os.path.join(directory, PAGES_NAME),
    )
    with open(os.path.join(directory, META_NAME), "w") as handle:
        json.dump(meta, handle, indent=1)
    for entry in list(os.listdir(directory)):
        if entry.startswith("gen-"):
            shutil.rmtree(os.path.join(directory, entry))


def test_v1_layout_still_loads(saved):
    _gen, data, original, directory = saved
    _downgrade_to_v1(directory)
    reopened = load_engine(directory)
    qgen = RandomQueryGenerator(data.schema, seed=3)
    for query in qgen.generate_for_node(("suppkey",), 6):
        assert reopened.query(query).rows == original.query(query).rows
    # Verification flags nothing but notes the missing checksums.
    report = verify_checkpoint(directory)
    assert report.ok
    assert any("v1" in note for note in report.notes)


def test_v1_bad_version_raises(saved):
    _gen, _data, _engine, directory = saved
    _downgrade_to_v1(directory)
    meta_path = os.path.join(directory, META_NAME)
    with open(meta_path) as handle:
        meta = json.load(handle)
    meta["format_version"] = 999
    with open(meta_path, "w") as handle:
        json.dump(meta, handle)
    with pytest.raises(PersistenceError):
        load_engine(directory)


def test_resave_migrates_v1_to_v2(saved):
    _gen, _data, engine, directory = saved
    _downgrade_to_v1(directory)
    migrated = load_engine(directory)
    save_engine(migrated, directory)
    report = verify_checkpoint(directory)
    assert report.ok
    assert report.generation == 1
    assert load_engine(directory).view_sizes() == engine.view_sizes()


# ----------------------------------------------------------------------
# leaf-run extents: round-trip + pre-extent checkpoint compatibility
# ----------------------------------------------------------------------
def test_view_extents_survive_roundtrip(saved):
    _gen, data, original, directory = saved
    reopened = load_engine(directory)
    originals = [t.tree.view_extents for t in original.forest.cubetrees]
    restored = [t.tree.view_extents for t in reopened.forest.cubetrees]
    assert restored == originals
    assert any(extents for extents in restored)  # not vacuously equal
    # The restored extents drive the fast path to serial-identical rows.
    qgen = RandomQueryGenerator(data.schema, seed=11)
    for query in qgen.generate_for_node(("suppkey",), 6, include_unbound=True):
        assert (
            reopened.query(query, fast=True).rows
            == original.query(query, fast=False).rows
        )


def test_checkpoint_without_extents_still_loads(saved):
    """Checkpoints written before the field existed lack the key; the
    loader restores empty extents and fast queries fall back."""
    _gen, data, original, directory = saved

    def drop_extents(meta):
        for state in meta["trees"]:
            state.pop("view_extents", None)

    _rewrite_meta(_newest_gen(directory), drop_extents)
    reopened = load_engine(directory)
    assert all(
        t.tree.view_extents == {} for t in reopened.forest.cubetrees
    )
    qgen = RandomQueryGenerator(data.schema, seed=11)
    for query in qgen.generate_for_node(("partkey",), 6):
        assert (
            reopened.query(query, fast=True).rows
            == original.query(query).rows
        )
