"""Tests for the Cubetree forest."""

import pytest

from repro.core.forest import CubetreeForest
from repro.core.mapping import select_mapping
from repro.errors import QueryError
from repro.relational.view import ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_forest():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=256)
    views = [
        ViewDefinition("V_ab", ("a", "b")),
        ViewDefinition("V_a", ("a",)),
        ViewDefinition("V_b", ("b",)),
        ViewDefinition("V_none", ()),
    ]
    allocation = select_mapping(views)
    forest = CubetreeForest(pool, allocation)
    data = {
        "V_ab": [(1, 1, 4.0), (2, 1, 6.0)],
        "V_a": [(1, 4.0), (2, 6.0)],
        "V_b": [(1, 10.0)],
        "V_none": [(10.0,)],
    }
    forest.build(data)
    return forest


def test_structure():
    forest = make_forest()
    assert forest.num_trees == 2  # two arity-1 views force a second tree
    assert forest.view_names() == ["V_a", "V_ab", "V_b", "V_none"]
    assert forest.num_pages > 0


def test_view_definition_lookup():
    forest = make_forest()
    assert forest.view_definition("V_ab").group_by == ("a", "b")
    with pytest.raises(QueryError):
        forest.view_definition("nope")


def test_build_requires_all_views():
    disk = DiskManager()
    pool = BufferPool(disk)
    allocation = select_mapping([ViewDefinition("V_a", ("a",))])
    forest = CubetreeForest(pool, allocation)
    with pytest.raises(QueryError):
        forest.build({})


def test_query_view_routes_to_right_tree():
    forest = make_forest()
    assert dict(forest.query_view("V_b", {})) == {(1,): (10.0,)}
    assert dict(forest.query_view("V_ab", {"a": 2})) == {(2, 1): (6.0,)}
    with pytest.raises(QueryError):
        list(forest.query_view("nope", {}))


def test_view_sizes():
    forest = make_forest()
    assert forest.view_sizes() == {
        "V_ab": 2, "V_a": 2, "V_b": 1, "V_none": 1,
    }


def test_access_paths_carry_reversed_sort_order():
    forest = make_forest()
    paths = {p.view.name: p for p in forest.access_paths()}
    assert paths["V_ab"].orders == (("b", "a"),)
    assert paths["V_ab"].size == 2.0


def test_update_routes_deltas_per_tree():
    forest = make_forest()
    forest.update({"V_a": [(1, 1.0)], "V_b": [(2, 3.0)]})
    assert dict(forest.query_view("V_a", {})) == {(1,): (5.0,), (2,): (6.0,)}
    assert dict(forest.query_view("V_b", {})) == {(1,): (10.0,), (2,): (3.0,)}
    # untouched views stay intact
    assert dict(forest.query_view("V_ab", {"a": 1})) == {(1, 1): (4.0,)}


def test_leaf_utilization():
    forest = make_forest()
    assert 0.0 < forest.leaf_utilization() <= 1.0
