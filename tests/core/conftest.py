"""Shared fixtures: both engines over the same tiny TPC-D warehouse."""

import pytest

from repro.core.conventional import ConventionalEngine
from repro.core.engine import CubetreeEngine
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator

PAPER_REPLICA_ORDERS = [
    ("suppkey", "custkey", "partkey"),
    ("custkey", "partkey", "suppkey"),
]
PAPER_INDEX_KEYS = [
    ("custkey", "suppkey", "partkey"),
    ("partkey", "custkey", "suppkey"),
    ("suppkey", "partkey", "custkey"),
]


def paper_views():
    return [
        ViewDefinition("V_psc", ("partkey", "suppkey", "custkey")),
        ViewDefinition("V_ps", ("partkey", "suppkey")),
        ViewDefinition("V_c", ("custkey",)),
        ViewDefinition("V_s", ("suppkey",)),
        ViewDefinition("V_p", ("partkey",)),
        ViewDefinition("V_none", ()),
    ]


@pytest.fixture(scope="module")
def warehouse():
    gen = TPCDGenerator(scale_factor=0.0005, seed=11)
    return gen, gen.generate()


@pytest.fixture(scope="module")
def cubetree_engine(warehouse):
    _gen, data = warehouse
    engine = CubetreeEngine(data.schema, buffer_pages=512)
    engine.materialize(
        paper_views(), data.facts,
        replicate={"V_psc": PAPER_REPLICA_ORDERS},
    )
    return engine


@pytest.fixture(scope="module")
def conventional_engine(warehouse):
    _gen, data = warehouse
    engine = ConventionalEngine(data.schema, buffer_pages=512)
    engine.load_fact(data.facts)
    engine.materialize(paper_views(), indexes={"V_psc": PAPER_INDEX_KEYS})
    return engine
