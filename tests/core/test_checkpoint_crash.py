"""Crash-recovery matrix for the generational checkpoint subsystem.

`save_engine` passes every file operation — each page of the dump, the
checksum sidecar, the catalog, the manifest temp write, the atomic
commit rename, and the post-commit prune — through a
:class:`~repro.storage.wal.CrashPoint`.  These tests arm the point at
*every* write site in turn and assert the create-new-then-swap
discipline: after any single-site crash the database reopens to either
the full pre-crash or the full post-crash generation, never a torn mix.
"""

import os

import pytest

from repro.analysis.fsck import check_checkpoint
from repro.core.engine import CubetreeEngine
from repro.core.persistence import (
    load_engine,
    save_engine,
    verify_checkpoint,
)
from repro.query.generator import RandomQueryGenerator
from repro.relational.view import ViewDefinition
from repro.storage.wal import CrashError, CrashPoint
from repro.warehouse.tpcd import TPCDGenerator

VIEWS = [
    ViewDefinition("V_ps", ("partkey", "suppkey")),
    ViewDefinition("V_s", ("suppkey",)),
    ViewDefinition("V_none", ()),
]

#: Named non-page write sites, as offsets from the end of the site list:
#: ... page writes ..., checksums, catalog, manifest write, commit, prune.
TAIL_SITES = {
    "checksums": 5,
    "catalog": 4,
    "manifest-write": 3,
    "manifest-commit": 2,
    "prune": 1,
}


class CountingCrashPoint(CrashPoint):
    """A CrashPoint that also counts how many sites it passed through."""

    def __init__(self):
        super().__init__()
        self.hits = 0

    def hit(self, context=""):
        self.hits += 1
        super().hit(context)


@pytest.fixture(scope="module")
def workload():
    """A loaded engine, an increment, a query set, and the site count."""
    gen = TPCDGenerator(scale_factor=0.0005, seed=31)
    data = gen.generate()
    engine = CubetreeEngine(data.schema, buffer_pages=64)
    engine.materialize(
        VIEWS, data.facts,
        replicate={"V_ps": [("suppkey", "partkey")]},
    )
    delta = gen.generate_increment(0.25)
    qgen = RandomQueryGenerator(data.schema, seed=7)
    queries = [
        query
        for node in (("partkey", "suppkey"), ("suppkey",), ())
        for query in qgen.generate_for_node(node, 3, include_unbound=True)
    ]
    return engine, delta, queries


def _answers(engine, queries):
    return [engine.query(q).rows for q in queries]


def _count_sites(engine, tmp_path, name):
    """How many crashable write sites one full checkpoint passes."""
    counter = CountingCrashPoint()
    save_engine(engine, str(tmp_path / name), crash_point=counter)
    return counter.hits


def test_every_site_is_crashable_and_recoverable(tmp_path, workload):
    """The exhaustive matrix: kill the checkpoint at site k, for every k.

    The database must reopen checksum-clean and answer every query from
    the last *committed* generation; a follow-up checkpoint must then
    succeed (recovery did not wedge the directory).
    """
    engine, _delta, queries = workload
    sites = _count_sites(engine, tmp_path, "probe")
    assert sites > TAIL_SITES["checksums"], "expected page sites too"

    directory = str(tmp_path / "db")
    save_engine(engine, directory)  # gen-000001, the committed baseline
    baseline = _answers(engine, queries)

    for k in range(sites):
        point = CrashPoint()
        point.arm(after=k)
        with pytest.raises(CrashError):
            save_engine(engine, directory, crash_point=point)
        assert point.fired

        recovered = load_engine(directory)
        assert _answers(recovered, queries) == baseline, f"site {k}"
        assert verify_checkpoint(directory).ok, f"site {k}"

    # The directory is not wedged: the next checkpoint commits normally.
    save_engine(engine, directory)
    assert verify_checkpoint(directory).ok
    assert _answers(load_engine(directory), queries) == baseline


@pytest.mark.parametrize("site", sorted(TAIL_SITES))
def test_update_then_crashed_checkpoint_is_all_or_nothing(
    tmp_path, workload, site
):
    """Merge-pack an increment, then crash the checkpoint at a named
    site: reopening must yield the full pre-update generation (crash
    before the manifest commit) or the full post-update one (crash in
    the post-commit prune) — never a mix of the two."""
    engine, delta, queries = workload
    directory = str(tmp_path / f"db_{site}")
    save_engine(engine, directory)

    live = load_engine(directory)
    pre = _answers(live, queries)
    live.update(delta)
    post = _answers(live, queries)
    assert post != pre

    sites = _count_sites(live, tmp_path, f"probe_{site}")
    point = CrashPoint()
    point.arm(after=sites - TAIL_SITES[site])
    with pytest.raises(CrashError):
        save_engine(live, directory, crash_point=point)
    assert point.fired

    recovered = load_engine(directory)
    answers = _answers(recovered, queries)
    if site == "prune":
        # The manifest renamed before the crash: the update committed.
        assert answers == post
    else:
        assert answers == pre
    assert verify_checkpoint(directory).ok
    report = check_checkpoint(directory)
    assert report.ok, report.format()


def test_crash_during_page_dump_mid_update_checkpoint(tmp_path, workload):
    """Same all-or-nothing property with the crash inside the page dump."""
    engine, delta, queries = workload
    directory = str(tmp_path / "db_dump")
    save_engine(engine, directory)

    live = load_engine(directory)
    pre = _answers(live, queries)
    live.update(delta)

    point = CrashPoint()
    point.arm(after=3)  # fourth page of the dump
    with pytest.raises(CrashError, match="checkpoint dump"):
        save_engine(live, directory, crash_point=point)

    recovered = load_engine(directory)
    assert _answers(recovered, queries) == pre
    # Retrying from the recovered engine reaches the post-update state.
    recovered.update(delta)
    save_engine(recovered, directory)
    reopened = load_engine(directory)
    assert _answers(reopened, queries) == _answers(live, queries)


def test_engine_disk_crash_point_is_threaded_through(tmp_path, workload):
    """Arming the engine disk's own hook (the merge-pack hook) also
    kills the checkpoint: the CrashPoint plumbing is shared."""
    engine, _delta, _queries = workload
    directory = str(tmp_path / "db_hook")
    save_engine(engine, directory)

    live = load_engine(directory)
    point = CrashPoint()
    live.disk.crash_point = point
    point.arm(after=1)
    with pytest.raises(CrashError):
        save_engine(live, directory)
    live.disk.crash_point = None
    assert verify_checkpoint(directory).ok


def test_crash_leaves_partial_without_manifest(tmp_path, workload):
    """A killed checkpoint's debris is a manifest-less directory that
    verify reports as partial and the next save prunes."""
    engine, _delta, _queries = workload
    directory = str(tmp_path / "db_partial")
    save_engine(engine, directory)

    point = CrashPoint()
    point.arm(after=2)
    with pytest.raises(CrashError):
        save_engine(engine, directory, crash_point=point)

    report = verify_checkpoint(directory)
    assert report.ok
    assert report.partial_generations == ["gen-000002"]

    save_engine(engine, directory)
    assert not os.path.exists(os.path.join(directory, "gen-000002"))
    assert verify_checkpoint(directory).partial_generations == []
