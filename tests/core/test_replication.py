"""Tests for multi-sort-order replication."""

import pytest

from repro.core.replication import (
    permute_state_rows,
    replica_definition,
    replica_name,
)
from repro.errors import MappingError
from repro.relational.view import ViewDefinition

BASE = ViewDefinition("V_psc", ("partkey", "suppkey", "custkey"))


def test_replica_definition():
    rep = replica_definition(BASE, ("suppkey", "custkey", "partkey"))
    assert rep.group_by == ("suppkey", "custkey", "partkey")
    assert rep.aggregates == BASE.aggregates
    assert rep.name == replica_name(BASE, ("suppkey", "custkey", "partkey"))
    assert rep.name != BASE.name


def test_replica_same_order_rejected():
    with pytest.raises(MappingError):
        replica_definition(BASE, BASE.group_by)


def test_replica_not_permutation_rejected():
    with pytest.raises(MappingError):
        replica_definition(BASE, ("partkey", "suppkey"))
    with pytest.raises(MappingError):
        replica_definition(BASE, ("partkey", "suppkey", "nope"))


def test_permute_state_rows():
    rows = [(1, 2, 3, 99.0), (4, 5, 6, 42.0)]
    out = list(permute_state_rows(BASE, rows,
                                  ("custkey", "partkey", "suppkey")))
    assert out == [(3, 1, 2, 99.0), (6, 4, 5, 42.0)]


def test_replicas_have_same_arity_so_map_to_distinct_trees():
    from repro.core.mapping import select_mapping

    r1 = replica_definition(BASE, ("suppkey", "custkey", "partkey"))
    r2 = replica_definition(BASE, ("custkey", "partkey", "suppkey"))
    allocation = select_mapping([BASE, r1, r2])
    trees = {allocation.tree_of(v.name) for v in (BASE, r1, r2)}
    assert len(trees) == 3
