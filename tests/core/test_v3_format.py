"""Checkpoint format v3: columnar pages on disk, v2 compatibility.

New saves stamp format_version 3; a v2 checkpoint (row-major leaves
only — exactly what the previous release wrote) must keep loading and
answer queries identically, because the catalog layout did not change
and the page decoder dispatches on each page's node-type byte.
"""

import json
import os

import pytest

from repro.core.engine import CubetreeEngine
from repro.core.persistence import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    META_NAME,
    SUPPORTED_FORMAT_VERSIONS,
    PersistenceError,
    load_engine,
    save_engine,
)
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.rtree.node import set_leaf_format
from repro.warehouse.tpcd import TPCDGenerator

from tests.core.test_persistence import _newest_gen, _rewrite_meta

VIEWS = [
    ViewDefinition("V_ps", ("partkey", "suppkey")),
    ViewDefinition("V_s", ("suppkey",)),
    ViewDefinition("V_none", ()),
]

PROBE = SliceQuery(group_by=("partkey",), bindings=(("suppkey", 3),))


@pytest.fixture(autouse=True)
def _reset_leaf_format():
    yield
    set_leaf_format(None)


def _build_engine(columnar=False):
    data = TPCDGenerator(scale_factor=0.0005, seed=23).generate()
    if columnar:
        set_leaf_format("columnar")
    try:
        engine = CubetreeEngine(data.schema, buffer_pages=128)
        engine.materialize(VIEWS, data.facts)
    finally:
        set_leaf_format(None)
    return engine


def _downgrade_generation(gen_path, version):
    """Stamp an existing checkpoint with an older format version."""
    _rewrite_meta(
        gen_path, lambda meta: meta.__setitem__("format_version", version)
    )
    manifest_path = os.path.join(gen_path, MANIFEST_NAME)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    manifest["format_version"] = version
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)


def test_new_checkpoints_stamp_v3(tmp_path):
    assert FORMAT_VERSION == 3
    assert FORMAT_VERSION in SUPPORTED_FORMAT_VERSIONS
    engine = _build_engine()
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    gen_path = _newest_gen(directory)
    with open(os.path.join(gen_path, META_NAME)) as handle:
        assert json.load(handle)["format_version"] == 3
    with open(os.path.join(gen_path, MANIFEST_NAME)) as handle:
        assert json.load(handle)["format_version"] == 3


def test_v2_checkpoint_still_loads(tmp_path):
    engine = _build_engine()
    expected = engine.query(PROBE).rows
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    _downgrade_generation(_newest_gen(directory), 2)

    reopened = load_engine(directory)
    assert reopened.view_sizes() == engine.view_sizes()
    assert reopened.query(PROBE).rows == expected


def test_future_version_rejected(tmp_path):
    engine = _build_engine()
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    _downgrade_generation(_newest_gen(directory), 99)
    with pytest.raises(PersistenceError):
        load_engine(directory)


def test_columnar_checkpoint_round_trip(tmp_path):
    row_engine = _build_engine(columnar=False)
    col_engine = _build_engine(columnar=True)
    assert (
        col_engine.forest.num_pages < row_engine.forest.num_pages
    ), "columnar checkpoint should be smaller"

    directory = str(tmp_path / "db")
    save_engine(col_engine, directory)
    # Loading does not depend on the gate: the stored pages carry their
    # own node-type bytes.
    reopened = load_engine(directory)
    assert reopened.view_sizes() == row_engine.view_sizes()
    assert reopened.query(PROBE).rows == row_engine.query(PROBE).rows
