"""Tests for the view advisor."""

import pytest

from repro.core.advisor import Advice, advise
from repro.core.engine import CubetreeEngine
from repro.core.conventional import ConventionalEngine
from repro.query.slice import SliceQuery
from repro.warehouse.tpcd import TPCDGenerator


@pytest.fixture(scope="module")
def warehouse():
    gen = TPCDGenerator(scale_factor=0.0005, seed=17)
    return gen.generate()


@pytest.fixture(scope="module")
def advice(warehouse):
    return advise(
        warehouse.schema,
        num_facts=warehouse.num_facts,
        max_structures=9,
        correlated_domains={
            frozenset({"partkey", "suppkey"}):
                4.0 * warehouse.schema.distinct_count("partkey"),
        },
    )


def test_advice_selects_paper_style_sets(advice):
    names = {view.name for view in advice.views}
    assert "V_none" in names
    assert "V_partkey_suppkey_custkey" in names
    # At this tiny scale the greedy keeps 2-3 apex indexes (the full
    # three-rotation family appears at SF-1 statistics; see
    # tests/cube/test_selection.py).
    apex_indexes = advice.indexes.get("V_partkey_suppkey_custkey", [])
    assert len(apex_indexes) >= 2
    structures = len(advice.views) + sum(
        len(keys) for keys in advice.indexes.values()
    )
    assert structures <= 9


def test_replicas_cover_every_selected_index(advice):
    """For each selected index, some Cubetree order clusters like it."""
    for owner, keys in advice.indexes.items():
        base = advice.view_named(owner)
        orders = {tuple(reversed(base.group_by))}
        for replica in advice.replicas.get(owner, []):
            orders.add(tuple(reversed(replica)))
        for key in keys:
            assert tuple(key) in orders, (key, orders)


def test_replicas_never_duplicate_base_order(advice):
    for owner, replicas in advice.replicas.items():
        base = advice.view_named(owner)
        assert base.group_by not in {tuple(r) for r in replicas}
        assert len({tuple(r) for r in replicas}) == len(replicas)


def test_view_named_unknown_raises(advice):
    with pytest.raises(KeyError):
        advice.view_named("nope")


def test_advice_drives_both_engines(warehouse, advice):
    cube = CubetreeEngine(warehouse.schema)
    cube.materialize(advice.views, warehouse.facts,
                     replicate=advice.replicas)
    conv = ConventionalEngine(warehouse.schema)
    conv.load_fact(warehouse.facts)
    conv.materialize(advice.views, indexes=advice.indexes)

    partkey = warehouse.facts[0][0]
    q = SliceQuery(("suppkey",), (("partkey", partkey),))
    assert cube.query(q).rows == conv.query(q).rows
    assert len(cube.query(q).rows) > 0


def test_empty_advice_for_zero_budget(warehouse):
    advice = advise(warehouse.schema, warehouse.num_facts,
                    space_budget_tuples=0.5)
    assert advice.views == [] or all(
        len(v.group_by) == 0 for v in advice.views
    )
