"""Cross-engine tests: both storage organizations must give identical
answers to every query, before and after updates.

A brute-force in-memory oracle (plain dict aggregation over the raw fact
rows) arbitrates, so a shared bug in both engines cannot hide.
"""

import pytest

from repro.core.conventional import ConventionalEngine
from repro.core.engine import CubetreeEngine
from repro.errors import QueryError, UpdateTimeoutError
from repro.query.generator import RandomQueryGenerator
from repro.query.slice import SliceQuery
from repro.warehouse.tpcd import TPCDGenerator

from tests.core.conftest import (
    PAPER_INDEX_KEYS,
    PAPER_REPLICA_ORDERS,
    paper_views,
)

NODES = [
    ("partkey", "suppkey", "custkey"),
    ("partkey", "suppkey"),
    ("partkey", "custkey"),
    ("suppkey", "custkey"),
    ("partkey",),
    ("suppkey",),
    ("custkey",),
]


def oracle(facts, query: SliceQuery):
    """Aggregate the raw fact rows directly."""
    attrs = ("partkey", "suppkey", "custkey")
    bind = query.binding_map
    groups = {}
    for row in facts:
        values = dict(zip(attrs, row[:3]))
        if any(values[a] != v for a, v in bind.items()):
            continue
        key = tuple(values[a] for a in query.group_by)
        groups[key] = groups.get(key, 0.0) + float(row[3])
    return [key + (total,) for key, total in sorted(groups.items())]


def test_load_reports_sane(cubetree_engine, conventional_engine):
    assert cubetree_engine.storage_pages() > 0
    assert conventional_engine.storage_pages() > 0
    sizes_cube = cubetree_engine.view_sizes()
    sizes_conv = conventional_engine.view_sizes()
    for name, size in sizes_conv.items():
        assert sizes_cube[name] == size


def test_view_sizes_match_paper_structure(cubetree_engine, warehouse):
    _gen, data = warehouse
    sizes = cubetree_engine.view_sizes()
    assert sizes["V_none"] == 1
    assert sizes["V_ps"] <= 4 * data.schema.distinct_count("partkey")
    assert sizes["V_psc"] <= len(data.facts)
    # Replicas mirror the base view exactly.
    for name, size in sizes.items():
        if name.startswith("V_psc__rep"):
            assert size == sizes["V_psc"]


@pytest.mark.parametrize("node", NODES, ids=["-".join(n) for n in NODES])
def test_engines_agree_with_oracle(
    node, warehouse, cubetree_engine, conventional_engine
):
    _gen, data = warehouse
    qgen = RandomQueryGenerator(data.schema, seed=5)
    for query in qgen.generate_for_node(node, 12, include_unbound=True):
        expected = oracle(data.facts, query)
        got_cube = cubetree_engine.query(query)
        got_conv = conventional_engine.query(query)
        assert got_cube.rows == expected, query.describe()
        assert got_conv.rows == expected, query.describe()


def test_super_aggregate_scalar(warehouse, cubetree_engine,
                                conventional_engine):
    _gen, data = warehouse
    expected = float(sum(row[3] for row in data.facts))
    q = SliceQuery((), ())
    assert cubetree_engine.query(q).scalar() == expected
    assert conventional_engine.query(q).scalar() == expected


def test_query_before_materialize_raises():
    data = TPCDGenerator(scale_factor=0.0005, seed=2).generate()
    engine = CubetreeEngine(data.schema)
    with pytest.raises(QueryError):
        engine.query(SliceQuery((), ()))
    conv = ConventionalEngine(data.schema)
    with pytest.raises(QueryError):
        conv.query(SliceQuery((), ()))
    with pytest.raises(QueryError):
        conv.materialize(paper_views())  # fact table not loaded


def test_engines_agree_after_update():
    gen = TPCDGenerator(scale_factor=0.0005, seed=3)
    data = gen.generate()
    delta = gen.generate_increment(0.1)

    cube = CubetreeEngine(data.schema, buffer_pages=512)
    cube.materialize(paper_views(), data.facts,
                     replicate={"V_psc": PAPER_REPLICA_ORDERS})
    conv = ConventionalEngine(data.schema, buffer_pages=512)
    conv.load_fact(data.facts)
    conv.materialize(paper_views(), indexes={"V_psc": PAPER_INDEX_KEYS})

    cube.update(delta)
    conv.update_incremental(delta)

    all_facts = list(data.facts) + list(delta)
    qgen = RandomQueryGenerator(data.schema, seed=7)
    for node in NODES:
        for query in qgen.generate_for_node(node, 4):
            expected = oracle(all_facts, query)
            assert cube.query(query).rows == expected, query.describe()
            assert conv.query(query).rows == expected, query.describe()


def test_conventional_recompute_equals_incremental():
    gen = TPCDGenerator(scale_factor=0.0005, seed=4)
    data = gen.generate()
    delta = gen.generate_increment(0.1)
    all_facts = list(data.facts) + list(delta)

    inc = ConventionalEngine(data.schema, buffer_pages=512)
    inc.load_fact(data.facts)
    inc.materialize(paper_views(), indexes={"V_psc": PAPER_INDEX_KEYS})
    inc.update_incremental(delta)

    rec = ConventionalEngine(data.schema, buffer_pages=512)
    rec.load_fact(data.facts)
    rec.materialize(paper_views(), indexes={"V_psc": PAPER_INDEX_KEYS})
    rec.update_recompute(all_facts)

    qgen = RandomQueryGenerator(data.schema, seed=8)
    for query in qgen.generate_for_node(("partkey", "custkey"), 5):
        assert inc.query(query).rows == rec.query(query).rows


def test_incremental_update_timeout():
    gen = TPCDGenerator(scale_factor=0.0005, seed=5)
    data = gen.generate()
    conv = ConventionalEngine(data.schema, buffer_pages=64)
    conv.load_fact(data.facts)
    conv.materialize(paper_views(), indexes={"V_psc": PAPER_INDEX_KEYS})
    with pytest.raises(UpdateTimeoutError):
        conv.update_incremental(gen.generate_increment(0.1),
                                deadline_ms=0.01)


def test_cubetree_update_is_mostly_sequential():
    gen = TPCDGenerator(scale_factor=0.0005, seed=6)
    data = gen.generate()
    cube = CubetreeEngine(data.schema, buffer_pages=128)
    cube.materialize(paper_views(), data.facts)
    report = cube.update(gen.generate_increment(0.1))
    io = report.io
    assert io.sequential_writes > io.random_writes


def test_query_reports_plan_and_io(cubetree_engine):
    q = SliceQuery(("partkey",), (("custkey", 3),))
    result = cubetree_engine.query(q)
    assert "V_psc" in result.plan
    assert result.wall_ms >= 0.0


def test_query_results_survive_updates():
    """QueryResult is fully materialized: no cursor can dangle into pages
    that a later merge-pack retires."""
    gen = TPCDGenerator(scale_factor=0.0005, seed=12)
    data = gen.generate()
    cube = CubetreeEngine(data.schema, buffer_pages=64)
    cube.materialize(paper_views(), data.facts)
    q = SliceQuery(("partkey",), (("custkey", data.facts[0][2]),))
    before = cube.query(q)
    rows_snapshot = list(before.rows)
    cube.update(gen.generate_increment(0.3))
    # The old result object is still intact and unchanged.
    assert before.rows == rows_snapshot
    # And fresh queries reflect the update.
    after = cube.query(q)
    assert sum(r[-1] for r in after.rows) >= sum(
        r[-1] for r in before.rows
    )


def test_week_of_refreshes_stays_consistent():
    """Several rounds of (increment -> refresh -> query) keep both engines
    agreeing with the oracle — repeated merge-packs must not drift."""
    gen = TPCDGenerator(scale_factor=0.0003, seed=77)
    data = gen.generate()
    cube = CubetreeEngine(data.schema, buffer_pages=128)
    cube.materialize(paper_views(), data.facts,
                     replicate={"V_psc": PAPER_REPLICA_ORDERS})
    conv = ConventionalEngine(data.schema, buffer_pages=128)
    conv.load_fact(data.facts)
    conv.materialize(paper_views(), indexes={"V_psc": PAPER_INDEX_KEYS})

    all_facts = list(data.facts)
    qgen = RandomQueryGenerator(data.schema, seed=13)
    for day in range(1, 4):
        delta = gen.generate_increment(0.15, stream=f"round-{day}")
        cube.update(delta)
        conv.update_incremental(delta)
        all_facts.extend(delta)
        for node in (("partkey", "suppkey", "custkey"), ("suppkey",)):
            for query in qgen.generate_for_node(node, 4,
                                                include_unbound=True):
                expected = oracle(all_facts, query)
                assert cube.query(query).rows == expected, (
                    day, query.describe())
                assert conv.query(query).rows == expected, (
                    day, query.describe())
