"""Tests for the SelectMapping algorithm (paper Fig. 5 / Table 5)."""

import pytest

from repro.core.mapping import select_mapping
from repro.errors import MappingError
from repro.relational.view import ViewDefinition


def v(name, attrs):
    return ViewDefinition(name, tuple(attrs))


def test_empty_input():
    allocation = select_mapping([])
    assert allocation.num_trees == 0


def test_single_view():
    allocation = select_mapping([v("V_a", ("a",))])
    assert allocation.num_trees == 1
    assert allocation.trees[0].dims == 1
    assert allocation.trees[0].views[0].name == "V_a"


def test_no_two_views_of_same_arity_share_a_tree():
    views = [v(f"V{i}", tuple(f"a{j}" for j in range(i % 3 + 1)))
             for i in range(9)]
    allocation = select_mapping(views)
    for tree in allocation.trees:
        arities = tree.arities()
        assert len(set(arities)) == len(arities)


def test_paper_table_5_allocation():
    """The TPC-D view set maps to R1{x,y,z} + R2{x} + R3{x} (Table 5)."""
    views = [
        v("V_psc", ("partkey", "suppkey", "custkey")),
        v("V_ps", ("partkey", "suppkey")),
        v("V_c", ("custkey",)),
        v("V_s", ("suppkey",)),
        v("V_p", ("partkey",)),
        v("V_none", ()),
    ]
    allocation = select_mapping(views)
    assert allocation.num_trees == 3
    t1, t2, t3 = allocation.trees
    assert t1.dims == 3
    assert [view.name for view in t1.views] == [
        "V_none", "V_c", "V_ps", "V_psc",
    ]
    assert t2.dims == 1
    assert [view.name for view in t2.views] == ["V_s"]
    assert t3.dims == 1
    assert [view.name for view in t3.views] == ["V_p"]


def test_paper_fig_7_allocation():
    """The nine-view example of Sec. 2.4 maps to three Cubetrees."""
    views = [
        v("V1", ("brand",)),
        v("V2", ("suppkey", "partkey")),
        v("V3", ("brand2", "suppkey2", "custkey", "month")),
        v("V4", ("partkey", "suppkey3", "custkey2", "year")),
        v("V5", ("partkey2", "custkey3", "year2")),
        v("V6", ("custkey4",)),
        v("V7", ("custkey5", "partkey3")),
        v("V8", ("partkey4",)),
        v("V9", ("suppkey4", "custkey6")),
    ]
    allocation = select_mapping(views)
    # S1 = {V1, V6, V8}, S2 = {V2, V7, V9}, S3 = {V5}, S4 = {V3, V4}
    # -> three trees: two 4-d and one 2-d, matching Fig. 7.
    assert allocation.num_trees == 3
    dims = sorted(tree.dims for tree in allocation.trees)
    assert dims == [2, 4, 4]


def test_minimality():
    """#trees equals the largest arity group size."""
    views = [v("Va", ("x",)), v("Vb", ("y",)), v("Vc", ("z",)),
             v("Vbig", ("x", "y", "z"))]
    allocation = select_mapping(views)
    assert allocation.num_trees == 3


def test_lone_super_aggregate_gets_one_dim():
    allocation = select_mapping([v("V_none", ())])
    assert allocation.num_trees == 1
    assert allocation.trees[0].dims == 1


def test_duplicate_names_rejected():
    with pytest.raises(MappingError):
        select_mapping([v("V", ("a",)), v("V", ("b",))])


def test_tree_of():
    views = [v("V_a", ("a",)), v("V_b", ("b",))]
    allocation = select_mapping(views)
    assert allocation.tree_of("V_a") == 0
    assert allocation.tree_of("V_b") == 1
    with pytest.raises(MappingError):
        allocation.tree_of("nope")


def test_describe_contains_every_view():
    views = [v("V_a", ("a",)), v("V_ab", ("a", "b"))]
    text = select_mapping(views).describe()
    assert "V_a" in text and "V_ab" in text
    assert "R1{x1,x2}" in text
