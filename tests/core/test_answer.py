"""Tests for the answer layer (residual filters, roll-ups, finalization)."""

import pytest

from repro.core.answer import (
    attribute_extractor,
    finalize_matches,
    split_bindings,
)
from repro.errors import QueryError
from repro.query.slice import SliceQuery
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import ViewDefinition
from repro.warehouse.hierarchy import Hierarchy

VIEW = ViewDefinition("V_ps", ("partkey", "suppkey"))
BRAND = Hierarchy("part", "brand", {1: 10, 2: 10, 3: 20})
HIER = {"brand": (BRAND, "partkey")}


def test_direct_extractor():
    extract = attribute_extractor(VIEW, "suppkey", HIER)
    assert extract((7, 9)) == 9


def test_hierarchy_extractor():
    extract = attribute_extractor(VIEW, "brand", HIER)
    assert extract((3, 9)) == 20


def test_extractor_unknown_attr_raises():
    with pytest.raises(QueryError):
        attribute_extractor(VIEW, "custkey", HIER)


def test_split_bindings_direct_and_residual():
    q = SliceQuery((), (("partkey", 1), ("brand", 10)))
    direct, residual = split_bindings(VIEW, q, HIER)
    assert direct == {"partkey": (1, 1)}
    assert len(residual) == 1
    extract, low, high = residual[0]
    assert (low, high) == (10, 10)
    assert extract((2, 5)) == 10


def test_split_bindings_with_ranges():
    q = SliceQuery((), (("suppkey", 4),),
                   ranges=(("partkey", 1, 2), ("brand", 10, 15)))
    direct, residual = split_bindings(VIEW, q, HIER)
    assert direct == {"suppkey": (4, 4), "partkey": (1, 2)}
    extract, low, high = residual[0]
    assert (low, high) == (10, 15)
    assert extract((1, 0)) == 10


def test_finalize_matches_reaggregates_and_sorts():
    q = SliceQuery(("partkey",), ())
    matches = [((2, 1), (5.0,)), ((1, 1), (3.0,)), ((1, 2), (4.0,))]
    rows = finalize_matches(matches, VIEW, q, HIER, [])
    assert rows == [(1, 7.0), (2, 5.0)]


def test_finalize_matches_applies_residual_filter():
    q = SliceQuery(("suppkey",), (("brand", 10),))
    matches = [((1, 1), (3.0,)), ((3, 1), (9.0,)), ((2, 2), (4.0,))]
    _direct, residual = split_bindings(VIEW, q, HIER)
    rows = finalize_matches(matches, VIEW, q, HIER, residual)
    # part 3 has brand 20 and is filtered out.
    assert rows == [(1, 3.0), (2, 4.0)]


def test_finalize_matches_rolls_up_group_attr():
    q = SliceQuery(("brand",), ())
    matches = [((1, 1), (3.0,)), ((2, 1), (5.0,)), ((3, 1), (9.0,))]
    rows = finalize_matches(matches, VIEW, q, HIER, [])
    assert rows == [(10, 8.0), (20, 9.0)]


def test_finalize_matches_avg_states():
    view = ViewDefinition("V_p", ("partkey",),
                          aggregates=(AggSpec(AggFunc.AVG, "q"),))
    q = SliceQuery((), ())
    matches = [((1,), (10.0, 2.0)), ((2,), (2.0, 2.0))]
    rows = finalize_matches(matches, view, q, {}, [])
    assert rows == [(3.0,)]  # (10 + 2) / (2 + 2)


def test_finalize_matches_empty():
    q = SliceQuery(("partkey",), ())
    assert finalize_matches([], VIEW, q, HIER, []) == []
