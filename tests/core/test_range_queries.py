"""End-to-end range-query tests (the paper's Sec. 3.1 extension).

The paper restricts its experiments to equality predicates but predicts
"in a more general experiment where arbitrary range queries are allowed
... the Cubetrees would be even faster".  These tests verify correctness
of range predicates through both engines against a brute-force oracle.
"""

import pytest

from repro.query.generator import RandomQueryGenerator
from repro.query.slice import SliceQuery
from repro.sql import parse_query
from repro.warehouse.tpcd import TPCDGenerator

def oracle(facts, query: SliceQuery):
    attrs = ("partkey", "suppkey", "custkey")
    bounds = query.bounds
    groups = {}
    for row in facts:
        values = dict(zip(attrs, row[:3]))
        if any(not lo <= values[a] <= hi for a, (lo, hi) in bounds.items()):
            continue
        key = tuple(values[a] for a in query.group_by)
        groups[key] = groups.get(key, 0.0) + float(row[3])
    return [key + (total,) for key, total in sorted(groups.items())]


@pytest.mark.parametrize("node", [
    ("partkey", "suppkey", "custkey"),
    ("partkey", "custkey"),
    ("suppkey",),
])
def test_range_queries_match_oracle(node, warehouse, cubetree_engine,
                                    conventional_engine):
    _gen, data = warehouse
    qgen = RandomQueryGenerator(data.schema, seed=31)
    for query in qgen.generate_range_queries(node, 10, width_fraction=0.1):
        expected = oracle(data.facts, query)
        assert cubetree_engine.query(query).rows == expected, query.describe()
        assert conventional_engine.query(query).rows == expected, (
            query.describe()
        )


def test_mixed_equality_and_range(warehouse, cubetree_engine,
                                  conventional_engine):
    _gen, data = warehouse
    suppkey = data.schema.key_domain("suppkey")[0]
    parts = sorted(data.schema.key_domain("partkey"))
    query = SliceQuery(
        ("custkey",),
        (("suppkey", suppkey),),
        (("partkey", parts[0], parts[len(parts) // 4]),),
    )
    expected = oracle(data.facts, query)
    assert cubetree_engine.query(query).rows == expected
    assert conventional_engine.query(query).rows == expected


def test_range_via_sql_between(warehouse, cubetree_engine):
    _gen, data = warehouse
    query = parse_query(
        "select suppkey, sum(quantity) from F "
        "where partkey between 1 and 50 group by suppkey",
        data.schema,
    )
    assert query.ranges == (("partkey", 1, 50),)
    expected = oracle(data.facts, query)
    assert cubetree_engine.query(query).rows == expected


def test_empty_range_rejected():
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        SliceQuery((), (), (("partkey", 5, 4),))


def test_range_attr_cannot_repeat():
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        SliceQuery((), (("partkey", 3),), (("partkey", 1, 5),))


def test_describe_with_range():
    q = SliceQuery(("suppkey",), (), (("partkey", 1, 9),))
    assert "partkey between 1 and 9" in q.describe()


def test_full_domain_range_equals_unbound(warehouse, cubetree_engine):
    _gen, data = warehouse
    parts = data.schema.key_domain("partkey")
    bounded = SliceQuery((), (), (("partkey", min(parts), max(parts)),))
    unbound = SliceQuery((), ())
    assert (cubetree_engine.query(bounded).scalar()
            == cubetree_engine.query(unbound).scalar())
