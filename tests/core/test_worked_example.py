"""The paper's Sec. 2.4 worked example: Tables 1–4 and Figure 8.

Views V8 = select partkey, sum(quantity) and V9 = select suppkey, custkey,
sum(quantity) share Cubetree R3{x,y}.  The paper gives their data and the
packed point order; we verify the reproduction byte for byte (modulo the
paper's fan-out-3 drawing — our leaves hold more entries, so the *order*
and *separation* are checked instead of the exact node boundaries).
"""

from repro.core.cubetree import Cubetree
from repro.core.mapping import select_mapping
from repro.relational.view import ViewDefinition
from repro.rtree.packing import sort_key
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

# Table 1: data for view V8 (partkey, sum(quantity)).
V8_DATA = [(4, 15.0), (2, 84.0), (3, 67.0), (1, 102.0), (6, 42.0), (5, 24.0)]
# Table 2: the sorted points the paper expects.
V8_SORTED = [((1,), 102.0), ((2,), 84.0), ((3,), 67.0),
             ((4,), 15.0), ((5,), 24.0), ((6,), 42.0)]

# Table 3: data for view V9 (suppkey, custkey, sum(quantity)).
V9_DATA = [(3, 1, 2.0), (1, 1, 24.0), (1, 3, 11.0), (3, 3, 17.0),
           (2, 1, 6.0)]
# Table 4: sorted (y, x) order.
V9_SORTED = [((1, 1), 24.0), ((2, 1), 6.0), ((3, 1), 2.0),
             ((1, 3), 11.0), ((3, 3), 17.0)]


def build_r3():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=64)
    v8 = ViewDefinition("V8", ("partkey",))
    v9 = ViewDefinition("V9", ("suppkey", "custkey"))
    tree = Cubetree(pool, 2, [v8, v9])
    tree.build({
        "V8": [(p, q) for p, q in V8_DATA],
        "V9": [(s, c, q) for s, c, q in V9_DATA],
    })
    return tree


def test_table_2_sort_order():
    points = sorted(((p,) for p, _ in V8_DATA),
                    key=lambda pt: sort_key(pt, 2))
    assert points == [pt for pt, _ in V8_SORTED]


def test_table_4_sort_order():
    points = sorted(((s, c) for s, c, _ in V9_DATA),
                    key=lambda pt: sort_key(pt, 2))
    assert points == [pt for pt, _ in V9_SORTED]


def test_figure_8_leaf_content_order():
    """The packed leaf chain holds V8's points then V9's, in sort order."""
    tree = build_r3()
    stream = [
        (view_id, point, values[0])
        for view_id, point, values in tree.tree.scan_points()
    ]
    expected = (
        [(1, (p, 0), q) for (p,), q in V8_SORTED]
        + [(2, (s, c), q) for (s, c), q in V9_SORTED]
    )
    assert stream == expected


def test_figure_8_views_do_not_interleave():
    tree = build_r3()
    view_ids = [view_id for view_id, _, _ in tree.tree.scan_points()]
    # All V8 (arity 1) points strictly precede all V9 (arity 2) points.
    assert view_ids == sorted(view_ids)


def test_queries_on_the_example():
    tree = build_r3()
    assert dict(tree.query("V8", {"partkey": 4})) == {(4,): (15.0,)}
    assert dict(tree.query("V9", {"custkey": 3})) == {
        (1, 3): (11.0,), (3, 3): (17.0,),
    }
    assert dict(tree.query("V9", {"suppkey": 3, "custkey": 1})) == {
        (3, 1): (2.0,),
    }


def test_select_mapping_of_the_nine_views_matches_figure_7():
    views = [
        ViewDefinition("V1", ("brand",)),
        ViewDefinition("V2", ("suppkey", "partkey")),
        ViewDefinition("V3", ("brand_", "suppkey_", "custkey", "month")),
        ViewDefinition("V4", ("partkey", "suppkey__", "custkey_", "year")),
        ViewDefinition("V5", ("partkey_", "custkey__", "year_")),
        ViewDefinition("V6", ("custkey___",)),
        ViewDefinition("V7", ("custkey____", "partkey__")),
        ViewDefinition("V8", ("partkey___",)),
        ViewDefinition("V9", ("suppkey___", "custkey_____")),
    ]
    allocation = select_mapping(views)
    by_tree = [
        {view.name for view in tree.views} for tree in allocation.trees
    ]
    # Fig. 7: R1 <- {V1, V2, V5, V3}, R2 <- {V6, V7, V4}, R3 <- {V8, V9}.
    assert by_tree == [
        {"V1", "V2", "V5", "V3"},
        {"V6", "V7", "V4"},
        {"V8", "V9"},
    ]
