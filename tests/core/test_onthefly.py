"""Tests for the no-materialization ROLAP baseline."""

import pytest

from repro.core.onthefly import OnTheFlyEngine
from repro.errors import QueryError
from repro.query.generator import RandomQueryGenerator
from repro.query.slice import SliceQuery
from repro.warehouse.tpcd import TPCDGenerator


@pytest.fixture(scope="module")
def setup():
    gen = TPCDGenerator(scale_factor=0.0005, seed=41)
    data = gen.generate()
    hierarchies = {"brand": data.hierarchy("partkey", "brand")}
    engine = OnTheFlyEngine(data.schema, hierarchies=hierarchies,
                            buffer_pages=128)
    engine.load_fact(data.facts)
    return gen, data, engine


def oracle(facts, query, brand_of=None):
    attrs = ("partkey", "suppkey", "custkey")
    groups = {}
    for row in facts:
        values = dict(zip(attrs, row[:3]))
        if brand_of is not None:
            values["brand"] = brand_of[row[0]]
        ok = all(
            lo <= values[a] <= hi for a, (lo, hi) in query.bounds.items()
        )
        if not ok:
            continue
        key = tuple(values[a] for a in query.group_by)
        groups[key] = groups.get(key, 0.0) + float(row[3])
    return [k + (v,) for k, v in sorted(groups.items())]


def test_query_before_load_raises():
    data = TPCDGenerator(scale_factor=0.0005, seed=1).generate()
    engine = OnTheFlyEngine(data.schema)
    with pytest.raises(QueryError):
        engine.query(SliceQuery((), ()))
    with pytest.raises(QueryError):
        engine.append([])


def test_matches_oracle_on_random_slices(setup):
    gen, data, engine = setup
    qgen = RandomQueryGenerator(data.schema, seed=2)
    for node in (("partkey", "suppkey", "custkey"), ("suppkey",),
                 ("partkey", "custkey")):
        for q in qgen.generate_for_node(node, 8, include_unbound=True):
            assert engine.query(q).rows == oracle(data.facts, q), q.describe()


def test_unbound_query_scans(setup):
    _gen, data, engine = setup
    result = engine.query(SliceQuery(("suppkey",), ()))
    assert "full scan" in result.plan
    assert result.rows == oracle(data.facts, SliceQuery(("suppkey",), ()))


def test_bound_query_uses_join_index(setup):
    _gen, data, engine = setup
    partkey = data.facts[0][0]
    result = engine.query(SliceQuery(("suppkey",), (("partkey", partkey),)))
    assert "join-index(partkey)" in result.plan


def test_hierarchy_bound_query_uses_bitmap(setup):
    _gen, data, engine = setup
    brand_of = data.hierarchy("partkey", "brand").mapping
    brand = brand_of[data.facts[0][0]]
    query = SliceQuery(("suppkey",), (("brand", brand),))
    result = engine.query(query)
    assert "bitmap(brand)" in result.plan
    assert result.rows == oracle(data.facts, query, brand_of)


def test_range_query_on_the_fly(setup):
    _gen, data, engine = setup
    query = SliceQuery(("suppkey",), (), (("partkey", 1, 20),))
    assert engine.query(query).rows == oracle(data.facts, query)


def test_append_refresh(setup):
    gen, data, _shared = setup
    engine = OnTheFlyEngine(data.schema)
    engine.load_fact(data.facts)
    delta = gen.generate_increment(0.1)
    report = engine.append(delta)
    assert report.rows_applied == len(delta)
    all_facts = list(data.facts) + list(delta)
    q = SliceQuery((), ())
    assert engine.query(q).scalar() == float(
        sum(r[-1] for r in all_facts)
    )


def test_storage_accounting(setup):
    _gen, _data, engine = setup
    assert engine.storage_pages() > 0
    assert engine.storage_bytes() == engine.storage_pages() * 4096
