"""Tests for a single Cubetree."""

import pytest

from repro.core.cubetree import Cubetree
from repro.errors import MappingError, QueryError
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool():
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=512)


def views_psc():
    return [
        ViewDefinition("V_ps", ("partkey", "suppkey")),
        ViewDefinition("V_p", ("partkey",)),
        ViewDefinition("V_none", ()),
    ]


def small_data():
    return {
        "V_ps": [(1, 1, 10.0), (2, 1, 5.0), (1, 2, 3.0)],
        "V_p": [(1, 13.0), (2, 5.0)],
        "V_none": [(18.0,)],
    }


def test_same_arity_twice_rejected():
    _disk, pool = make_pool()
    with pytest.raises(MappingError):
        Cubetree(pool, 2, [ViewDefinition("A", ("a",)),
                           ViewDefinition("B", ("b",))])


def test_arity_above_dims_rejected():
    _disk, pool = make_pool()
    with pytest.raises(MappingError):
        Cubetree(pool, 1, [ViewDefinition("A", ("a", "b"))])


def test_build_and_query_each_view():
    _disk, pool = make_pool()
    tree = Cubetree(pool, 2, views_psc())
    tree.build(small_data())
    assert len(tree) == 6

    got = dict(tree.query("V_ps", {}))
    assert got == {(1, 1): (10.0,), (2, 1): (5.0,), (1, 2): (3.0,)}
    got = dict(tree.query("V_p", {}))
    assert got == {(1,): (13.0,), (2,): (5.0,)}
    got = dict(tree.query("V_none", {}))
    assert got == {(): (18.0,)}


def test_query_with_bindings():
    _disk, pool = make_pool()
    tree = Cubetree(pool, 2, views_psc())
    tree.build(small_data())
    got = dict(tree.query("V_ps", {"suppkey": 1}))
    assert got == {(1, 1): (10.0,), (2, 1): (5.0,)}
    got = dict(tree.query("V_ps", {"partkey": 1, "suppkey": 2}))
    assert got == {(1, 2): (3.0,)}


def test_query_unknown_view_or_attr():
    _disk, pool = make_pool()
    tree = Cubetree(pool, 2, views_psc())
    tree.build(small_data())
    with pytest.raises(QueryError):
        list(tree.query("nope", {}))
    with pytest.raises(QueryError):
        list(tree.query("V_p", {"custkey": 1}))


def test_view_sizes():
    _disk, pool = make_pool()
    tree = Cubetree(pool, 2, views_psc())
    tree.build(small_data())
    assert tree.view_sizes() == {"V_ps": 3, "V_p": 2, "V_none": 1}


def test_update_merges_sum_states():
    _disk, pool = make_pool()
    tree = Cubetree(pool, 2, views_psc())
    tree.build(small_data())
    tree.update({
        "V_ps": [(1, 1, 2.0), (9, 9, 1.0)],
        "V_p": [(1, 2.0), (9, 1.0)],
        "V_none": [(3.0,)],
    })
    assert dict(tree.query("V_ps", {}))[(1, 1)] == (12.0,)
    assert dict(tree.query("V_ps", {}))[(9, 9)] == (1.0,)
    assert dict(tree.query("V_p", {}))[(9,)] == (1.0,)
    assert dict(tree.query("V_none", {}))[()] == (21.0,)


def test_update_min_max_avg_states():
    _disk, pool = make_pool()
    aggs = (AggSpec(AggFunc.MIN, "q"), AggSpec(AggFunc.MAX, "q"),
            AggSpec(AggFunc.AVG, "q"))
    view = ViewDefinition("V_a", ("a",), aggregates=aggs)
    tree = Cubetree(pool, 1, [view])
    tree.build({"V_a": [(1, 5.0, 9.0, 14.0, 2.0)]})
    tree.update({"V_a": [(1, 3.0, 7.0, 10.0, 1.0)]})
    got = dict(tree.query("V_a", {}))
    assert got[(1,)] == (3.0, 9.0, 24.0, 3.0)


def test_partial_update_leaves_other_views_untouched():
    _disk, pool = make_pool()
    tree = Cubetree(pool, 2, views_psc())
    tree.build(small_data())
    tree.update({"V_p": [(1, 1.0)]})
    assert dict(tree.query("V_p", {}))[(1,)] == (14.0,)
    assert dict(tree.query("V_ps", {})) == {
        (1, 1): (10.0,), (2, 1): (5.0,), (1, 2): (3.0,),
    }


def test_leaf_utilization_packed():
    _disk, pool = make_pool()
    view = ViewDefinition("V_a", ("a",))
    tree = Cubetree(pool, 1, [view])
    tree.build({"V_a": [(i, 1.0) for i in range(1, 10_001)]})
    assert tree.leaf_utilization() > 0.95
    assert tree.num_pages > 10
