"""The paper's experiment end-to-end: Cubetrees vs conventional storage.

Run with::

    python examples/tpcd_comparison.py [scale_factor]

Reproduces the evaluation pipeline of Sec. 3 at a reduced scale:
GHRU 1-greedy selects the views and indexes, both storage organizations
materialize the same view set on identical simulated disks, and a random
slice-query workload compares them on load time, storage, query time, and
refresh speed.
"""

import sys

from repro.experiments.common import (
    ExperimentConfig,
    FIG12_NODES,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
    fmt_bytes,
    fmt_duration,
    node_label,
)
from repro.query.generator import RandomQueryGenerator


def main() -> None:
    # Below ~SF 0.005 the whole database fits in the buffer pool and the
    # comparison degenerates (everything is cached for both engines); the
    # paper's regime needs data several times larger than the buffer.
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    config = ExperimentConfig(scale_factor=scale, queries_per_node=40)
    _gen, data = build_warehouse(config)
    print(f"TPC-D at SF {scale}: {data.num_facts} fact rows, "
          f"{data.schema.distinct_count('partkey')} parts / "
          f"{data.schema.distinct_count('suppkey')} suppliers / "
          f"{data.schema.distinct_count('custkey')} customers")

    print("\n-- loading both configurations --")
    cube, cube_report = build_cubetree_engine(config, data)
    conv, conv_report = build_conventional_engine(config, data)
    print(f"cubetrees:    {fmt_duration(cube_report.total_simulated_ms)} "
          f"simulated, {fmt_bytes(cube_report.bytes_on_disk)}")
    print(f"conventional: {fmt_duration(conv_report.total_simulated_ms)} "
          f"simulated, {fmt_bytes(conv_report.bytes_on_disk)}")

    print("\n-- querying (per lattice view) --")
    qgen = RandomQueryGenerator(data.schema, seed=1)
    total = {"cubetrees": 0.0, "conventional": 0.0}
    for node in FIG12_NODES:
        queries = qgen.generate_for_node(node, config.queries_per_node)
        cube_ms = sum(cube.query(q).io.total_ms for q in queries)
        conv_ms = sum(conv.query(q).io.total_ms for q in queries)
        total["cubetrees"] += cube_ms
        total["conventional"] += conv_ms
        print(f"  {node_label(node):<26} cubetrees "
              f"{fmt_duration(cube_ms):>10}   conventional "
              f"{fmt_duration(conv_ms):>10}")
    ratio = total["conventional"] / total["cubetrees"]
    print(f"  overall: cubetrees {ratio:.1f}x faster")

    print("\n-- answers agree --")
    probe = qgen.generate_for_node(("partkey", "custkey"), 3)
    for query in probe:
        a = cube.query(query).rows
        b = conv.query(query).rows
        assert a == b, query.describe()
        print(f"  {query.describe()}: {len(a)} rows from both engines")


if __name__ == "__main__":
    main()
