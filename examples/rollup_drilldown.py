"""Roll-up and drill-down over dimension hierarchies (paper Sec. 2.1/2.4).

Run with::

    python examples/rollup_drilldown.py

Builds the four-dimension warehouse of the paper's Sec. 2.4 example (part,
supplier, customer, time) and materializes views over *hierarchy*
attributes — brand, month, year — then walks the classic OLAP pattern:
yearly totals, drill down into one year's months, roll up to brands.
"""

from repro.core.engine import CubetreeEngine
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator


def main() -> None:
    generator = TPCDGenerator(scale_factor=0.002, seed=21, include_time=True)
    warehouse = generator.generate()
    hierarchies = {
        "brand": warehouse.hierarchy("partkey", "brand"),
        "month": warehouse.hierarchy("timekey", "month"),
        "year": warehouse.hierarchy("timekey", "year"),
    }

    # Views in the spirit of the paper's V1..V9 (Fig. 6): a mix of key and
    # hierarchy groupings at different granularities.
    views = [
        ViewDefinition("V_brand_year", ("brand", "year")),
        ViewDefinition("V_brand_month", ("brand", "month")),
        ViewDefinition("V_year", ("year",)),
        ViewDefinition("V_partkey_year", ("partkey", "year")),
        ViewDefinition("V_none", ()),
    ]
    engine = CubetreeEngine(warehouse.schema, hierarchies=hierarchies)
    report = engine.materialize(views, warehouse.facts)
    print(f"materialized {report.view_rows} rows across "
          f"{engine.forest.num_trees} Cubetrees\n")

    # Roll-up: total sales per year.
    yearly = engine.query(SliceQuery(("year",), ()))
    print("sales per year (from", yearly.plan.split()[0] + "):")
    for year, total in yearly.rows:
        print(f"  year {year}: {total:.0f}")

    # Drill-down: months of the busiest year.
    busiest = max(yearly.rows, key=lambda r: r[1])[0]
    monthly = engine.query(SliceQuery(("month",), ()))
    months_of_year = [
        (month, total) for month, total in monthly.rows
        if (month - 1) // 12 + 1 == busiest
    ]
    print(f"\ndrill-down into year {busiest} (by running month):")
    for month, total in months_of_year[:6]:
        print(f"  month {month}: {total:.0f}")

    # Slice: one brand's sales per year, answered via roll-up from
    # V_brand_year.
    brand = 1
    per_brand = engine.query(SliceQuery(("year",), (("brand", brand),)))
    print(f"\nbrand {brand} sales per year (plan: {per_brand.plan}):")
    for year, total in per_brand.rows:
        print(f"  year {year}: {total:.0f}")

    # Verify the roll-up against a direct computation over the fact rows.
    year_of = hierarchies["year"].mapping
    brand_of = hierarchies["brand"].mapping
    expected = {}
    for partkey, _s, _c, timekey, quantity in warehouse.facts:
        if brand_of[partkey] == brand:
            key = year_of[timekey]
            expected[key] = expected.get(key, 0.0) + quantity
    assert per_brand.rows == [
        (year, expected[year]) for year in sorted(expected)
    ]
    print("\nroll-up verified against the raw fact rows")


if __name__ == "__main__":
    main()
