"""From a star schema to a saved, reopenable Cubetree database.

Run with::

    python examples/advisor_and_persistence.py

Uses the advisor to derive the paper-style configuration automatically
(GHRU 1-greedy selection translated into views + replicas), materializes
the Cubetree forest, checkpoints it to disk, reopens it in a fresh engine,
and keeps refreshing the reopened database.
"""

import tempfile

from repro.core.advisor import advise
from repro.core.engine import CubetreeEngine
from repro.core.persistence import load_engine, save_engine
from repro.query.slice import SliceQuery
from repro.warehouse.tpcd import TPCDGenerator


def main() -> None:
    generator = TPCDGenerator(scale_factor=0.002, seed=13)
    warehouse = generator.generate()

    # 1. Ask the advisor for a configuration (it runs GHRU 1-greedy with
    #    the warehouse's own statistics, including PARTSUPP correlation).
    advice = advise(
        warehouse.schema,
        num_facts=warehouse.num_facts,
        max_structures=9,
        correlated_domains={
            frozenset({"partkey", "suppkey"}):
                4.0 * warehouse.schema.distinct_count("partkey"),
        },
    )
    print("advisor selected:")
    for view in advice.views:
        print(f"  view    {view.name}: {view.describe()}")
    for owner, orders in advice.replicas.items():
        for order in orders:
            print(f"  replica {owner} in order {order}")

    # 2. Materialize and checkpoint.
    engine = CubetreeEngine(warehouse.schema)
    report = engine.materialize(advice.views, warehouse.facts,
                                replicate=advice.replicas)
    print(f"\nmaterialized {report.view_rows} rows "
          f"({report.pages} pages)")

    with tempfile.TemporaryDirectory() as directory:
        save_engine(engine, directory)
        print(f"checkpointed to {directory}")

        # 3. Reopen in a brand-new engine and verify.
        reopened = load_engine(directory)
        probe = SliceQuery((), ())
        assert reopened.query(probe).scalar() == engine.query(probe).scalar()
        print("reopened database answers identically")

        # 4. The reopened database keeps living: nightly refresh.
        increment = generator.generate_increment(0.1)
        update = reopened.update(increment)
        print(f"merged {len(increment)} increment rows into the reopened "
              f"database ({update.io.total_ms:.0f} ms simulated)")
        expected = float(
            sum(r[-1] for r in warehouse.facts)
            + sum(r[-1] for r in increment)
        )
        assert reopened.query(probe).scalar() == expected
        print(f"grand total verified: {expected:.0f}")


if __name__ == "__main__":
    main()
