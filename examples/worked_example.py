"""The paper's Sec. 2.4 worked example, reproduced end to end.

Run with::

    python examples/worked_example.py

Views V8 = (partkey, sum) and V9 = (suppkey, custkey, sum) share Cubetree
R3{x,y}; this script prints the paper's Tables 1-4 (raw data and packed
sort order) and the Figure-8 leaf stream, then runs the slice queries of
Figure 4 against the packed tree.
"""

from repro.core.cubetree import Cubetree
from repro.relational.view import ViewDefinition
from repro.rtree.packing import sort_key
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

# Table 1 / Table 3: the paper's raw data.
V8_DATA = [(4, 15), (2, 84), (3, 67), (1, 102), (6, 42), (5, 24)]
V9_DATA = [(3, 1, 2), (1, 1, 24), (1, 3, 11), (3, 3, 17), (2, 1, 6)]


def show(title, rows):
    print(f"\n{title}")
    for row in rows:
        print("  ", row)


def main() -> None:
    show("Table 1 — data for view V8 (partkey, sum(quantity)):", V8_DATA)
    v8_sorted = sorted(V8_DATA, key=lambda r: sort_key((r[0],), 2))
    show("Table 2 — V8 points in packing order:",
         [(f"({p},0)", q) for p, q in v8_sorted])

    show("Table 3 — data for view V9 (suppkey, custkey, sum):", V9_DATA)
    v9_sorted = sorted(V9_DATA, key=lambda r: sort_key((r[0], r[1]), 2))
    show("Table 4 — V9 points sorted (y, x):",
         [(f"({s},{c})", q) for s, c, q in v9_sorted])

    # Build R3{x,y} exactly as SelectMapping would assign it.
    pool = BufferPool(DiskManager(), capacity=64)
    v8 = ViewDefinition("V8", ("partkey",))
    v9 = ViewDefinition("V9", ("suppkey", "custkey"))
    tree = Cubetree(pool, 2, [v8, v9])
    tree.build({
        "V8": [(p, float(q)) for p, q in V8_DATA],
        "V9": [(s, c, float(q)) for s, c, q in V9_DATA],
    })

    print("\nFigure 8 — the packed leaf stream of R3 "
          "(V8's run first, then V9's, no interleaving):")
    for view_id, point, values in tree.tree.scan_points():
        name = "V8" if view_id == 1 else "V9"
        print(f"   {name}: point {point} -> {values[0]:.0f}")

    print("\nFigure 4 — slice queries against the packed tree:")
    q1 = dict(tree.query("V8", {"partkey": 4}))
    print(f"   sales of part 4 (V8 slice):            {q1[(4,)][0]:.0f}")
    q2 = dict(tree.query("V9", {"custkey": 3}))
    print("   per-supplier sales to customer 3 (V9):",
          {s: v[0] for (s, _c), v in q2.items()})

    assert q1[(4,)] == (15.0,)
    assert q2 == {(1, 3): (11.0,), (3, 3): (17.0,)}
    print("\nall values match the paper's tables")


if __name__ == "__main__":
    main()
