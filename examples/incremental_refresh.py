"""A week of nightly warehouse refreshes through merge-packing.

Run with::

    python examples/incremental_refresh.py

Models the paper's Fig. 15 pipeline over seven "days": each night a fresh
increment arrives, the delta views are computed with the same sort-based
machinery as the initial load, and every Cubetree is merge-packed in one
linear sequential pass.  An in-memory oracle verifies the warehouse after
every refresh.
"""

from repro.core.engine import CubetreeEngine
from repro.experiments.common import fmt_duration, paper_replicas, paper_views
from repro.query.slice import SliceQuery
from repro.warehouse.tpcd import TPCDGenerator

DAYS = 7


def main() -> None:
    generator = TPCDGenerator(scale_factor=0.002, seed=99)
    warehouse = generator.generate()
    engine = CubetreeEngine(warehouse.schema)
    engine.materialize(paper_views(), warehouse.facts,
                       replicate=paper_replicas())
    print(f"initial load: {warehouse.num_facts} fact rows, "
          f"{engine.storage_pages()} pages")

    running_total = float(sum(row[-1] for row in warehouse.facts))
    grand_total_query = SliceQuery((), ())

    for day in range(1, DAYS + 1):
        increment = generator.generate_increment(
            fraction=0.1, stream=f"day-{day}"
        )
        report = engine.update(increment)
        running_total += sum(row[-1] for row in increment)

        measured = engine.query(grand_total_query).scalar()
        assert measured == running_total, (day, measured, running_total)
        seq = report.io.sequential_reads + report.io.sequential_writes
        rnd = report.io.random_reads + report.io.random_writes
        print(f"day {day}: merged {len(increment):>5} rows in "
              f"{fmt_duration(report.io.total_ms):>9} simulated "
              f"({seq} sequential / {rnd} random page I/Os) — "
              f"grand total {measured:.0f} ok")

    sizes = engine.view_sizes()
    print("\nview sizes after a week of refreshes:")
    for name in sorted(sizes):
        print(f"  {name:<40} {sizes[name]:>8} tuples")


if __name__ == "__main__":
    main()
