"""Quickstart: materialize ROLAP views as Cubetrees and query them.

Run with::

    python examples/quickstart.py

Walks the full lifecycle on a small generated warehouse: define views (in
SQL), materialize them as a forest of packed Cubetrees, answer slice
queries, and refresh with a bulk increment.
"""

from repro.core.engine import CubetreeEngine
from repro.sql import parse_query, parse_view
from repro.warehouse.tpcd import TPCDGenerator


def main() -> None:
    # 1. A small TPC-D-style warehouse: part/supplier/customer + quantity.
    generator = TPCDGenerator(scale_factor=0.002, seed=7)
    warehouse = generator.generate()
    print(f"warehouse: {warehouse.num_facts} fact rows, "
          f"{len(warehouse.schema.dimensions)} dimensions")

    # 2. Define the views to materialize — plain SQL, like the paper's V1/V3.
    views = [
        parse_view(
            "select partkey, suppkey, custkey, sum(quantity) from F "
            "group by partkey, suppkey, custkey",
            warehouse.schema, "V_psc",
        ),
        parse_view(
            "select partkey, suppkey, sum(quantity) from F "
            "group by partkey, suppkey",
            warehouse.schema, "V_ps",
        ),
        parse_view("select sum(quantity) from F", warehouse.schema, "V_none"),
    ]

    # 3. Materialize: compute the views, run SelectMapping, pack the forest.
    engine = CubetreeEngine(warehouse.schema)
    report = engine.materialize(views, warehouse.facts)
    print(f"loaded {report.view_rows} view rows into "
          f"{engine.forest.num_trees} Cubetrees "
          f"({report.pages} pages, "
          f"{report.total_simulated_ms:.0f} ms simulated I/O)")

    # 4. Query through the same SQL front end (the engine routes each
    #    query to the best view and sort order).
    supplier = warehouse.schema.key_domain("suppkey")[0]
    query = parse_query(
        f"select partkey, sum(quantity) from F where suppkey = {supplier} "
        "group by partkey",
        warehouse.schema,
    )
    result = engine.query(query)
    print(f"\nQ1: total sales of every part from supplier {supplier}")
    print(f"    plan: {result.plan}")
    for row in result.rows[:5]:
        print(f"    partkey={row[0]:<6} sum(quantity)={row[1]:.0f}")
    if len(result.rows) > 5:
        print(f"    ... {len(result.rows) - 5} more rows")

    # 5. Refresh: merge-pack tonight's increment in one sequential pass.
    increment = generator.generate_increment(fraction=0.1)
    update = engine.update(increment)
    print(f"\nmerged a {len(increment)}-row increment in "
          f"{update.io.total_ms:.0f} ms simulated I/O "
          f"({update.io.sequential_writes} sequential / "
          f"{update.io.random_writes} random page writes)")

    after = engine.query(parse_query("select sum(quantity) from F",
                                     warehouse.schema))
    expected = float(sum(r[-1] for r in warehouse.facts)
                     + sum(r[-1] for r in increment))
    print(f"grand total after refresh: {after.scalar():.0f} "
          f"(expected {expected:.0f})")
    assert after.scalar() == expected


if __name__ == "__main__":
    main()
